//! The rank world: rank launchers and per-rank communicators.
//!
//! [`World::launch`] stands in for `mpirun`: it spawns `P` rank threads,
//! hands each a [`Communicator`], runs the given closure SPMD-style, and
//! joins all ranks, returning their results. A shared [`NetworkModel`]
//! governs message latency; a shared seed gives all ranks a common source
//! of pseudo-randomness (the paper's majority collective relies on all
//! ranks drawing the same per-round initiator, §4.2).
//!
//! [`World::launch_with`] selects a [`Transport`]: the same closure can
//! run ranks as threads (above) or as one OS process per rank over
//! loopback TCP ([`World::launch_tcp`], see the `transport` module).
//!
//! Every send route is a **bounded queue** ([`WorldConfig::queue_capacity`]
//! messages): a sender that outruns a slow consumer blocks for space
//! instead of ballooning memory, which propagates backpressure up the
//! pipeline exactly as a full socket buffer would. A send that stays
//! blocked past [`WorldConfig::queue_deadline`] panics with a diagnostic —
//! the symptom of a backpressure cycle (see the README's "data path"
//! section), which must fail loudly rather than hang. Queue pressure is
//! counted per rank in [`CommStats`].

use crate::membership::Membership;
use crate::net::{spawn_network, ExtraLatency, NetHandle};
use crate::payload::Payload;
use crate::sim::SimOpts;
use crate::stats::CommStats;
use crate::tag::{Message, Rank, WireTag};
use crate::transport::{launch_tcp, Route, TcpOpts, Transport};
use crate::{NetworkModel, TypedBuf};
use crossbeam::channel::{bounded, Receiver};
use pcoll_obs::{Clock, EventKind, Recorder, TraceConfig, LEVEL_VERBOSE};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Default bound on every send queue, in messages. Deep enough that the
/// collectives' bounded round window (engine GC lag × fan-out) never
/// brushes it in healthy runs; shallow enough that a stuck consumer
/// exerts backpressure long before memory becomes the limit.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Default deadline a full-queue send blocks for before panicking.
pub const DEFAULT_QUEUE_DEADLINE: Duration = Duration::from_secs(30);

/// What a rank's mailbox receives.
#[derive(Debug)]
pub enum Envelope {
    /// A delivered message.
    Data(Message),
    /// Orderly teardown request for whoever drains this mailbox.
    Shutdown,
    /// The failure detector declared `peer` dead: whoever drains this
    /// mailbox (the schedule engine) must stop waiting for that rank —
    /// synthesize its missing contributions and carry on with the
    /// survivors. Injected by the TCP reader on socket death, by
    /// [`crate::sim::SimWorld::kill`] under virtual time, and by chaos
    /// harnesses directly.
    PeerDown {
        /// The rank that died.
        peer: Rank,
    },
    /// The admission fence readmitted `peer`: whoever drains this mailbox
    /// (the schedule engine) must stop synthesizing null contributions
    /// for that rank — rounds at or past the fence expect its real data
    /// again. The eviction verdict in reverse; only the SPMD-fenced
    /// admission protocol may send it (local evidence can never
    /// resurrect a peer). Injected by [`crate::sim::SimWorld::rejoin`]
    /// under virtual time and by the admission fence on live transports.
    PeerUp {
        /// The rank that was readmitted.
        peer: Rank,
    },
}

/// What a [`FaultHook`] decides for one message about to be routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Route the message normally.
    Deliver,
    /// Silently discard it (models a lossy or severed link).
    Drop,
}

/// A chaos-injection hook consulted on every data send of the in-process
/// routes: given `(src, dst)` it returns whether the message survives.
/// This is the thread-backed analogue of the simulator's native
/// `FaultPlan` — TCP worker processes don't see it (the config does not
/// cross the `exec` boundary; chaos there means real `kill -9`).
#[derive(Clone)]
pub struct FaultHook(pub Arc<dyn Fn(Rank, Rank) -> FaultAction + Send + Sync>);

impl FaultHook {
    /// Wrap a `(src, dst) -> FaultAction` closure.
    pub fn new(f: impl Fn(Rank, Rank) -> FaultAction + Send + Sync + 'static) -> FaultHook {
        FaultHook(Arc::new(f))
    }

    /// Consult the hook for a message from `src` to `dst`.
    #[inline]
    pub fn decide(&self, src: Rank, dst: Rank) -> FaultAction {
        (self.0)(src, dst)
    }
}

impl std::fmt::Debug for FaultHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FaultHook(..)")
    }
}

/// Configuration for [`World::launch`].
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of ranks (P).
    pub nranks: usize,
    /// Latency model every message passes through.
    pub network: NetworkModel,
    /// Seed shared by all ranks (consensus randomness, §4.2).
    pub seed: u64,
    /// Message-count bound on every send queue: rank mailboxes, the
    /// network shaper's inbox, and the TCP per-peer writer queues.
    pub queue_capacity: usize,
    /// How long a full-queue send blocks before panicking (the deadlock
    /// tripwire; see module docs).
    pub queue_deadline: Duration,
    /// Flight-recorder setting for every rank of the launch. Defaults to
    /// the `PCOLL_TRACE`/`PCOLL_TRACE_CAP` environment (off when unset);
    /// override programmatically with [`WorldConfig::with_trace`].
    pub trace: TraceConfig,
    /// Optional chaos hook consulted on every in-process data send
    /// (see [`FaultHook`]). `None` — the default — costs one branch.
    pub fault_hook: Option<FaultHook>,
    /// Idle deadline for the failure detector: a peer silent for longer
    /// than this is eligible for [`Membership::sweep_suspects`], so a
    /// *hung* (not dead) rank eventually reaches `Suspect`. `None` — the
    /// default — keeps [`crate::membership::DEFAULT_SUSPICION_GRACE`]
    /// and, on the sim backend, disables the automatic per-delivery
    /// sweep (the detector then only reacts to hard evidence).
    pub suspect_timeout: Option<Duration>,
}

impl WorldConfig {
    /// `P` ranks over an instant network, seed 0 — the unit-test default.
    pub fn instant(nranks: usize) -> Self {
        WorldConfig {
            nranks,
            network: NetworkModel::Instant,
            seed: 0,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            queue_deadline: DEFAULT_QUEUE_DEADLINE,
            trace: TraceConfig::from_env(),
            fault_hook: None,
            suspect_timeout: None,
        }
    }

    /// `P` ranks over the HPC-flavoured alpha-beta network.
    pub fn hpc(nranks: usize) -> Self {
        WorldConfig {
            network: NetworkModel::hpc(),
            ..Self::instant(nranks)
        }
    }

    /// Override the shared seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the per-queue message bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        self.queue_capacity = capacity;
        self
    }

    /// Override the full-queue blocking deadline.
    pub fn with_queue_deadline(mut self, deadline: Duration) -> Self {
        self.queue_deadline = deadline;
        self
    }

    /// Enable the flight recorder for every rank of the launch:
    /// `level` 1 records spans and instants, 2 adds per-message events;
    /// `capacity` is the per-rank ring size in events. Note the TCP
    /// transport's worker *processes* read the `PCOLL_TRACE` environment
    /// instead (inherited from the parent), since the config does not
    /// cross the `exec` boundary.
    pub fn with_trace(mut self, level: u8, capacity: usize) -> Self {
        self.trace = TraceConfig { level, capacity };
        self
    }

    /// Install a chaos hook on every in-process data send.
    pub fn with_fault_hook(mut self, hook: FaultHook) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// Set the failure detector's idle deadline (see
    /// [`WorldConfig::suspect_timeout`]).
    pub fn with_suspect_timeout(mut self, timeout: Duration) -> Self {
        assert!(!timeout.is_zero(), "suspect timeout must be positive");
        self.suspect_timeout = Some(timeout);
        self
    }

    /// The detector grace period this config implies: the configured
    /// suspect timeout, or the default grace.
    pub fn suspicion_grace(&self) -> Duration {
        self.suspect_timeout
            .unwrap_or(crate::membership::DEFAULT_SUSPICION_GRACE)
    }
}

/// Cloneable sending half of a rank's communicator.
///
/// Sends are non-blocking while the destination queue has space: the
/// payload is handed to the network (or straight to the destination
/// mailbox under [`NetworkModel::Instant`]) and the call returns. When
/// the queue is full the send blocks for space — bounded-memory
/// backpressure — and panics after [`WorldConfig::queue_deadline`].
/// Buffer ownership moves with the message — there is no `MPI_Request`
/// to wait on because there is no shared user buffer.
#[derive(Clone)]
pub struct CommHandle {
    pub(crate) rank: Rank,
    pub(crate) size: usize,
    pub(crate) seed: u64,
    pub(crate) net: Option<NetHandle>,
    pub(crate) route: Route,
    pub(crate) stats: Arc<CommStats>,
    pub(crate) queue_deadline: Duration,
    pub(crate) membership: Arc<Membership>,
    pub(crate) fault: Option<FaultHook>,
}

impl CommHandle {
    /// This rank's index.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// World size (P).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The world-shared seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// This rank's queue-pressure counters.
    pub fn comm_stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.stats)
    }

    /// This rank's flight-recorder handle (disabled unless the launch
    /// was configured with [`WorldConfig::with_trace`] or `PCOLL_TRACE`).
    pub fn recorder(&self) -> &Recorder {
        self.stats.recorder()
    }

    /// This rank's per-peer liveness view (see [`Membership`]).
    pub fn membership(&self) -> &Arc<Membership> {
        &self.membership
    }

    /// Send `payload` to `dst` under `tag`. `None` payload = control
    /// message (activation). Sending to a finished rank is silently
    /// dropped, like a packet to a dead host.
    pub fn send(&self, dst: Rank, tag: WireTag, payload: Option<TypedBuf>) {
        self.send_payload(dst, tag, payload.map(Payload::new))
    }

    /// Zero-copy send: hand over a shared [`Payload`] clone. This is the
    /// fan-out primitive — sending the same payload to `k` destinations
    /// costs `k` reference-count bumps and zero element copies.
    pub fn send_payload(&self, dst: Rank, tag: WireTag, payload: Option<Payload>) {
        assert!(dst < self.size, "dst {dst} out of range (P={})", self.size);
        if let Some(hook) = &self.fault {
            if hook.decide(self.rank, dst) == FaultAction::Drop {
                return;
            }
        }
        let bytes = payload.as_ref().map_or(0, |p| p.byte_len());
        if payload.is_some() {
            self.stats
                .bytes_sent
                .fetch_add(bytes as u64, std::sync::atomic::Ordering::Relaxed);
        }
        self.stats
            .recorder()
            .record(LEVEL_VERBOSE, || EventKind::MsgSend {
                coll: u64::from(tag.coll.0),
                round: tag.round,
                sem: tag.sem,
                dst: dst as u32,
                bytes: bytes as u64,
            });
        let msg = Message {
            src: self.rank,
            tag,
            payload,
        };
        match &self.net {
            Some(net) => net.send(dst, msg, &self.stats, self.queue_deadline),
            None => self
                .route
                .deliver(dst, Envelope::Data(msg), &self.stats, self.queue_deadline),
        }
    }

    /// Ask whoever drains `dst`'s mailbox to shut down (used by the engine
    /// teardown; app code normally never calls this). Bypasses the
    /// network model — teardown control is not modeled traffic.
    pub fn send_shutdown(&self, dst: Rank) {
        self.route
            .deliver(dst, Envelope::Shutdown, &self.stats, self.queue_deadline);
    }

    /// Tell whoever drains `dst`'s mailbox that `peer` is dead. Like
    /// [`CommHandle::send_shutdown`], this bypasses the network model —
    /// failure notification is local control, not modeled traffic. Chaos
    /// harnesses use it to inject deaths on the in-process backend; the
    /// TCP reader threads use the equivalent path on socket death.
    pub fn send_peer_down(&self, dst: Rank, peer: Rank) {
        self.route.deliver(
            dst,
            Envelope::PeerDown { peer },
            &self.stats,
            self.queue_deadline,
        );
    }

    /// Tell whoever drains `dst`'s mailbox that `peer` was readmitted by
    /// the admission fence — the reverse of
    /// [`CommHandle::send_peer_down`], with the same local-control,
    /// unmodeled-traffic semantics.
    pub fn send_peer_up(&self, dst: Rank, peer: Rank) {
        self.route.deliver(
            dst,
            Envelope::PeerUp { peer },
            &self.stats,
            self.queue_deadline,
        );
    }
}

/// Receiving half of a rank's communicator: the raw mailbox.
pub struct Inbox {
    pub(crate) rx: Receiver<Envelope>,
}

impl Inbox {
    /// Block until the next envelope arrives (or all senders are gone).
    pub fn recv(&self) -> Option<Envelope> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }

    /// Block with a timeout.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Envelope> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Expose the underlying channel receiver (the schedule engine selects
    /// over this plus its command channel).
    pub fn receiver(&self) -> &Receiver<Envelope> {
        &self.rx
    }
}

/// A rank's full communicator: cloneable send half, exclusive receive half,
/// and a host-side barrier for harness coordination (the message-based
/// dissemination barrier lives in the `pcoll` crate).
pub struct Communicator {
    pub(crate) handle: CommHandle,
    pub(crate) inbox: Inbox,
    pub(crate) host_barrier: Arc<Barrier>,
    pub(crate) rendezvous: Option<crate::transport::RendezvousClient>,
}

impl Communicator {
    /// This rank's index.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.handle.rank
    }

    /// World size (P).
    #[inline]
    pub fn size(&self) -> usize {
        self.handle.size
    }

    /// The world-shared seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.handle.seed
    }

    /// This rank's queue-pressure counters.
    pub fn comm_stats(&self) -> Arc<CommStats> {
        self.handle.comm_stats()
    }

    /// This rank's flight-recorder handle (see [`CommHandle::recorder`]).
    pub fn recorder(&self) -> &Recorder {
        self.handle.recorder()
    }

    /// This rank's per-peer liveness view (see [`Membership`]).
    pub fn membership(&self) -> &Arc<Membership> {
        self.handle.membership()
    }

    /// Clone the send half.
    pub fn handle(&self) -> CommHandle {
        self.handle.clone()
    }

    /// Send helper (see [`CommHandle::send`]).
    pub fn send(&self, dst: Rank, tag: WireTag, payload: Option<TypedBuf>) {
        self.handle.send(dst, tag, payload)
    }

    /// Zero-copy send helper (see [`CommHandle::send_payload`]).
    pub fn send_payload(&self, dst: Rank, tag: WireTag, payload: Option<Payload>) {
        self.handle.send_payload(dst, tag, payload)
    }

    /// Split into send and receive halves. The receive half is exclusive:
    /// after this, matching/draining is the caller's job (typically the
    /// schedule engine's).
    pub fn split(self) -> (CommHandle, Inbox) {
        (self.handle, self.inbox)
    }

    /// Host-side barrier across all rank threads. This is *not* a modeled
    /// collective — it is test/bench scaffolding (e.g. "synchronize before
    /// the next iteration", Fig. 8 line 12, when we want exact alignment
    /// without touching the system under test).
    ///
    /// Shared-memory only: under the TCP transport each process holds one
    /// rank, so this degenerates to a no-op. Cross-rank alignment over TCP
    /// must use the message-based barrier (`pcoll::RankCtx::barrier`).
    pub fn host_barrier(&self) {
        self.host_barrier.wait();
    }

    /// Clone the host-barrier handle (so it survives [`Communicator::split`]).
    pub fn host_barrier_arc(&self) -> Arc<Barrier> {
        Arc::clone(&self.host_barrier)
    }

    /// Borrow the inbox without splitting.
    pub fn inbox(&self) -> &Inbox {
        &self.inbox
    }

    /// The rendezvous blackboard client — TCP transport only. A tiny
    /// key-value side channel through the launch parent, used by the
    /// admission-fence protocol to hand a rejoining rank the
    /// policy/membership history it missed (see
    /// [`crate::transport::RendezvousClient`]). `None` on the
    /// in-process and sim backends, where the harness can share state
    /// in memory. Grab a clone *before* handing the communicator to an
    /// engine — the client outlives [`Communicator::split`].
    pub fn rendezvous(&self) -> Option<crate::transport::RendezvousClient> {
        self.rendezvous.clone()
    }
}

/// The world launcher (see module docs).
pub struct World;

impl World {
    /// Spawn `cfg.nranks` rank threads, run `f` on each, join, and return
    /// all results indexed by rank. Panics in any rank propagate (after all
    /// other ranks are joined) so tests fail loudly.
    ///
    /// ```
    /// use pcoll_comm::{World, WorldConfig};
    ///
    /// let out = World::launch(WorldConfig::instant(4), |c| c.rank() * 10);
    /// assert_eq!(out, vec![0, 10, 20, 30]);
    /// ```
    pub fn launch<T, F>(cfg: WorldConfig, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Communicator) -> T + Send + Sync + 'static,
    {
        Self::launch_threaded(cfg, None, f)
    }

    /// Thread-per-rank launch, optionally composing a planet's region
    /// geography into the delivery thread (`Transport::Sim` closure mode).
    fn launch_threaded<T, F>(cfg: WorldConfig, extra: Option<Arc<ExtraLatency>>, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Communicator) -> T + Send + Sync + 'static,
    {
        assert!(cfg.nranks > 0, "world must have at least one rank");
        let (mb_txs, mb_rxs): (Vec<_>, Vec<_>) =
            (0..cfg.nranks).map(|_| bounded(cfg.queue_capacity)).unzip();
        let route = Route::mailboxes(mb_txs);

        // One wall clock shared by every rank's recorder, so trace
        // timestamps are comparable across tracks (flow arrows between
        // ranks would otherwise connect unrelated epochs).
        let trace_clock = Clock::wall();

        // The shaper is bypassed only when there is nothing to model:
        // instant network *and* no geography.
        let modeled = !matches!(cfg.network, NetworkModel::Instant) || extra.is_some();
        let (net, net_join) = if modeled {
            // The shared shaper thread accounts its own queue pressure
            // (it delivers on behalf of every rank). Its recorder track
            // uses pseudo-rank P — the "network" lane in a trace.
            let shaper_rec = cfg.trace.recorder(cfg.nranks as u32, trace_clock.clone());
            let (h, j) = spawn_network(
                cfg.network,
                route.clone(),
                cfg.seed ^ 0x5EED,
                cfg.queue_capacity,
                cfg.queue_deadline,
                Arc::new(CommStats::with_recorder(shaper_rec)),
                extra,
            );
            (Some(h), Some(j))
        } else {
            (None, None)
        };

        let host_barrier = Arc::new(Barrier::new(cfg.nranks));
        let f = Arc::new(f);
        let mut joins = Vec::with_capacity(cfg.nranks);
        for (rank, rx) in mb_rxs.into_iter().enumerate() {
            let recorder = cfg.trace.recorder(rank as u32, trace_clock.clone());
            let comm = Communicator {
                handle: CommHandle {
                    rank,
                    size: cfg.nranks,
                    seed: cfg.seed,
                    net: net.clone(),
                    route: route.clone(),
                    stats: Arc::new(CommStats::with_recorder(recorder)),
                    queue_deadline: cfg.queue_deadline,
                    membership: Arc::new(Membership::with_grace(
                        rank,
                        cfg.nranks,
                        trace_clock.clone(),
                        cfg.suspicion_grace(),
                    )),
                    fault: cfg.fault_hook.clone(),
                },
                inbox: Inbox { rx },
                host_barrier: Arc::clone(&host_barrier),
                rendezvous: None,
            };
            let f = Arc::clone(&f);
            joins.push(
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .spawn(move || f(comm))
                    .expect("spawn rank thread"),
            );
        }

        let mut results = Vec::with_capacity(cfg.nranks);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for j in joins {
            match j.join() {
                Ok(v) => results.push(v),
                Err(e) => panic = Some(e),
            }
        }
        if let Some(net) = net {
            net.shutdown();
        }
        if let Some(j) = net_join {
            let _ = j.join();
        }
        if let Some(e) = panic {
            std::panic::resume_unwind(e);
        }
        results
    }

    /// Launch over an explicit [`Transport`]: the same SPMD closure runs
    /// thread-per-rank ([`World::launch`]), process-per-rank over loopback
    /// TCP ([`World::launch_tcp`]), or thread-per-rank with a simulated
    /// planet's region latencies composed into the delivery thread
    /// ([`World::launch_sim`]).
    ///
    /// Returns `None` only in a TCP worker process that serves a
    /// *different* launch label (skip that call site and fall through);
    /// see the `transport` module docs.
    ///
    /// ```
    /// use pcoll_comm::{Transport, World, WorldConfig};
    ///
    /// let out = World::launch_with(WorldConfig::instant(2), Transport::InProcess, |c| {
    ///     c.size() as u32
    /// });
    /// assert_eq!(out, Some(vec![2, 2]));
    /// ```
    pub fn launch_with<T, F>(cfg: WorldConfig, transport: Transport, f: F) -> Option<Vec<T>>
    where
        T: Send + 'static + serde::Serialize + serde::Deserialize,
        F: Fn(Communicator) -> T + Send + Sync + 'static,
    {
        match transport {
            Transport::InProcess => Some(Self::launch(cfg, f)),
            Transport::Tcp(opts) => launch_tcp(cfg, opts, f),
            Transport::Sim(opts) => Some(Self::launch_sim(cfg, opts, f)),
        }
    }

    /// Launch the SPMD closure thread-per-rank with `opts.planet`'s
    /// region-to-region latencies added to every message (co-simulation
    /// over wall time: real threads, simulated geography). For the pure
    /// virtual-time discrete-event path — no threads, a virtual clock,
    /// bit-identical replays — drive a [`crate::sim::SimWorld`] directly.
    pub fn launch_sim<T, F>(cfg: WorldConfig, opts: SimOpts, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Communicator) -> T + Send + Sync + 'static,
    {
        let extra = Arc::new(ExtraLatency::from_planet(&opts.planet, cfg.nranks));
        Self::launch_threaded(cfg, Some(extra), f)
    }

    /// Launch `cfg.nranks` rank *processes* over loopback TCP (the
    /// `mpirun` stand-in: this process re-`exec`s itself once per rank
    /// and acts as the rendezvous server). See the `transport` module.
    ///
    /// ```no_run
    /// use pcoll_comm::{TcpOpts, World, WorldConfig};
    ///
    /// // Re-execs this binary once per rank; `None` in workers serving a
    /// // different launch label.
    /// let out: Option<Vec<usize>> =
    ///     World::launch_tcp(WorldConfig::instant(2), TcpOpts::labeled("demo"), |c| c.rank());
    /// ```
    pub fn launch_tcp<T, F>(cfg: WorldConfig, opts: TcpOpts, f: F) -> Option<Vec<T>>
    where
        T: serde::Serialize + serde::Deserialize + Send + 'static,
        F: FnOnce(Communicator) -> T,
    {
        launch_tcp(cfg, opts, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::CollId;
    use std::sync::atomic::Ordering;

    fn tag(sem: u32) -> WireTag {
        WireTag::new(CollId(7), 0, sem)
    }

    #[test]
    fn launch_returns_per_rank_results() {
        let out = World::launch(WorldConfig::instant(4), |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn ring_pass_instant() {
        // Each rank sends its rank to the next; everyone receives prev.
        let out = World::launch(WorldConfig::instant(4), |c| {
            let next = (c.rank() + 1) % c.size();
            c.send(next, tag(0), Some(TypedBuf::from(vec![c.rank() as i64])));
            match c.inbox().recv() {
                Some(Envelope::Data(m)) => m.payload.unwrap().as_i64().unwrap()[0],
                _ => panic!("expected data"),
            }
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn ring_pass_over_modeled_network() {
        let out = World::launch(WorldConfig::hpc(8), |c| {
            let next = (c.rank() + 1) % c.size();
            c.send(next, tag(0), Some(TypedBuf::from(vec![c.rank() as i64])));
            match c.inbox().recv() {
                Some(Envelope::Data(m)) => m.payload.unwrap().as_i64().unwrap()[0],
                _ => panic!("expected data"),
            }
        });
        let want: Vec<i64> = (0..8).map(|r| ((r + 7) % 8) as i64).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn host_barrier_synchronizes() {
        use std::sync::atomic::AtomicUsize;
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        World::launch(WorldConfig::instant(8), move |c| {
            c2.fetch_add(1, Ordering::SeqCst);
            c.host_barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(c2.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn seed_is_shared() {
        let out = World::launch(WorldConfig::instant(3).with_seed(99), |c| c.seed());
        assert_eq!(out, vec![99, 99, 99]);
    }

    #[test]
    fn send_payload_fan_out_shares_one_allocation() {
        // Rank 0 fans the same payload to every peer: each delivered copy
        // must alias the sender's allocation (refcount > 1 while the
        // sender still holds its clone).
        let out = World::launch(WorldConfig::instant(4), |c| {
            if c.rank() == 0 {
                let payload = Payload::new(TypedBuf::from(vec![5.0f32; 256]));
                for dst in 1..c.size() {
                    c.send_payload(dst, tag(0), Some(payload.clone()));
                }
                payload.ref_count() > 1
            } else {
                match c.inbox().recv() {
                    Some(Envelope::Data(m)) => {
                        m.payload.unwrap().as_f32().unwrap() == [5.0f32; 256]
                    }
                    _ => panic!("expected data"),
                }
            }
        });
        assert_eq!(out, vec![true; 4]);
    }

    #[test]
    fn full_mailbox_stalls_the_sender_and_bounds_depth() {
        // Capacity 4, reader drains late: the sender must block (stall
        // counters tick) and the backlog must never exceed the bound.
        let cfg = WorldConfig::instant(2).with_queue_capacity(4);
        let out = World::launch(cfg, |c| {
            if c.rank() == 0 {
                for i in 0..32 {
                    c.send(1, tag(i), Some(TypedBuf::from(vec![i as i32])));
                }
                let s = c.comm_stats().snapshot();
                (s.send_stalls > 0, s.peak_queue_depth <= 4, 0u32)
            } else {
                std::thread::sleep(Duration::from_millis(30));
                let mut got = 0;
                while got < 32 {
                    match c.inbox().recv() {
                        Some(Envelope::Data(m)) => {
                            assert_eq!(m.tag.sem, got, "FIFO under backpressure");
                            got += 1;
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
                (true, true, got)
            }
        });
        assert!(out[0].0, "sender must have stalled on the full queue");
        assert!(out[0].1, "queue depth must respect the bound");
        assert_eq!(out[1].2, 32, "all messages delivered");
    }

    #[test]
    fn launch_sim_composes_region_latency_over_wall_time() {
        use crate::sim::{Planet, SimOpts};
        use std::time::Instant;
        // Two ranks in different regions, 20ms one-way: a round trip
        // through the shaper must take >= 20ms even under Instant model.
        let opts = SimOpts {
            planet: Planet::uniform(2, Duration::from_millis(20)),
            ..SimOpts::default()
        };
        let out = World::launch_sim(WorldConfig::instant(2), opts, |c| {
            let peer = 1 - c.rank();
            let t0 = Instant::now();
            c.send(peer, tag(0), Some(TypedBuf::from(vec![c.rank() as i64])));
            match c.inbox().recv() {
                Some(Envelope::Data(m)) => {
                    let v = m.payload.unwrap().as_i64().unwrap()[0];
                    (v, t0.elapsed() >= Duration::from_millis(20))
                }
                other => panic!("unexpected {other:?}"),
            }
        });
        assert_eq!(out[0].0, 1);
        assert_eq!(out[1].0, 0);
        assert!(out[0].1 && out[1].1, "geography must delay delivery");
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        World::launch(WorldConfig::instant(2), |c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }
}
