//! Typed message buffers and elementwise reduction kernels.
//!
//! The collective engine is dtype-generic in the way MPI is: a buffer is a
//! vector of one of the basic types, and reductions ([`ReduceOp`]) combine
//! two buffers of identical dtype and length elementwise. The `f32` path is
//! the hot one (gradients); the loops below are written so the compiler can
//! auto-vectorize them (no bounds checks in the hot loop thanks to
//! `zip`-style iteration).

use serde::{Deserialize, Serialize};

/// Element type of a [`TypedBuf`], mirroring the MPI basic types the paper's
/// schedule operations are defined over (a practical subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE float (the gradient hot path).
    F32,
    /// 64-bit IEEE float.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
}

impl DType {
    /// Size of one element in bytes.
    #[inline]
    pub fn size_of(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F64 | DType::I64 => 8,
        }
    }
}

/// Reduction operator for [`TypedBuf::combine`]; the same set MPI predefines
/// for arithmetic reductions (the subset used by the paper's collectives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceOp {
    /// Elementwise addition.
    Sum,
    /// Elementwise product.
    Prod,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
}

/// Errors arising from buffer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufError {
    /// Two buffers that must agree in dtype do not.
    DTypeMismatch {
        /// The dtype the operation required.
        expected: DType,
        /// The dtype it was given.
        got: DType,
    },
    /// Two buffers that must agree in length do not.
    LenMismatch {
        /// The length the operation required.
        expected: usize,
        /// The length it was given.
        got: usize,
    },
}

impl std::fmt::Display for BufError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufError::DTypeMismatch { expected, got } => {
                write!(f, "dtype mismatch: expected {expected:?}, got {got:?}")
            }
            BufError::LenMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for BufError {}

/// A dense, typed, owned message buffer.
///
/// `TypedBuf` is the unit of data every schedule operation manipulates: send
/// payloads, receive slots, and reduction operands. Moving a `TypedBuf` is
/// cheap (a `Vec` move), which is what makes "receive straight into the
/// instance arena" zero-copy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TypedBuf {
    /// `f32` elements.
    F32(Vec<f32>),
    /// `f64` elements.
    F64(Vec<f64>),
    /// `i32` elements.
    I32(Vec<i32>),
    /// `i64` elements.
    I64(Vec<i64>),
}

macro_rules! elementwise {
    ($dst:expr, $src:expr, $op:expr) => {{
        debug_assert_eq!($dst.len(), $src.len());
        match $op {
            ReduceOp::Sum => {
                for (d, s) in $dst.iter_mut().zip($src.iter()) {
                    *d += *s;
                }
            }
            ReduceOp::Prod => {
                for (d, s) in $dst.iter_mut().zip($src.iter()) {
                    *d *= *s;
                }
            }
            ReduceOp::Min => {
                for (d, s) in $dst.iter_mut().zip($src.iter()) {
                    if *s < *d {
                        *d = *s;
                    }
                }
            }
            ReduceOp::Max => {
                for (d, s) in $dst.iter_mut().zip($src.iter()) {
                    if *s > *d {
                        *d = *s;
                    }
                }
            }
        }
    }};
}

/// Fused `out[i] = a[i] ⊕ b[i]` with the exact operand order of
/// [`elementwise!`] (`a` plays the accumulator role), so a fused pass is
/// bit-identical to materialize-then-fold even for `Min`/`Max` over NaNs.
macro_rules! fused_elementwise {
    ($out:expr, $a:expr, $b:expr, $op:expr) => {{
        match $op {
            ReduceOp::Sum => {
                for (o, (x, y)) in $out.iter_mut().zip($a.iter().zip($b.iter())) {
                    *o = *x + *y;
                }
            }
            ReduceOp::Prod => {
                for (o, (x, y)) in $out.iter_mut().zip($a.iter().zip($b.iter())) {
                    *o = *x * *y;
                }
            }
            ReduceOp::Min => {
                for (o, (x, y)) in $out.iter_mut().zip($a.iter().zip($b.iter())) {
                    *o = if *y < *x { *y } else { *x };
                }
            }
            ReduceOp::Max => {
                for (o, (x, y)) in $out.iter_mut().zip($a.iter().zip($b.iter())) {
                    *o = if *y > *x { *y } else { *x };
                }
            }
        }
    }};
}

impl TypedBuf {
    /// An all-zeros buffer of the given dtype and length — the "null
    /// gradient" (G_null) absent ranks contribute in a partial collective.
    pub fn zeros(dtype: DType, len: usize) -> Self {
        match dtype {
            DType::F32 => TypedBuf::F32(vec![0.0; len]),
            DType::F64 => TypedBuf::F64(vec![0.0; len]),
            DType::I32 => TypedBuf::I32(vec![0; len]),
            DType::I64 => TypedBuf::I64(vec![0; len]),
        }
    }

    /// A zero buffer with the same shape as `self`.
    pub fn zeros_like(&self) -> Self {
        Self::zeros(self.dtype(), self.len())
    }

    /// The buffer's element type.
    #[inline]
    pub fn dtype(&self) -> DType {
        match self {
            TypedBuf::F32(_) => DType::F32,
            TypedBuf::F64(_) => DType::F64,
            TypedBuf::I32(_) => DType::I32,
            TypedBuf::I64(_) => DType::I64,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            TypedBuf::F32(v) => v.len(),
            TypedBuf::F64(v) => v.len(),
            TypedBuf::I32(v) => v.len(),
            TypedBuf::I64(v) => v.len(),
        }
    }

    /// True if the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload size in bytes (what the network model charges for).
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.len() * self.dtype().size_of()
    }

    /// Elementwise `self = self ⊕ other` under `op`.
    ///
    /// This is the `Compute` operation of the schedule DAG (§4.1.1: "simple
    /// computations defined between two arrays of data items").
    pub fn combine(&mut self, other: &TypedBuf, op: ReduceOp) -> Result<(), BufError> {
        if self.dtype() != other.dtype() {
            return Err(BufError::DTypeMismatch {
                expected: self.dtype(),
                got: other.dtype(),
            });
        }
        if self.len() != other.len() {
            return Err(BufError::LenMismatch {
                expected: self.len(),
                got: other.len(),
            });
        }
        match (self, other) {
            (TypedBuf::F32(d), TypedBuf::F32(s)) => elementwise!(d, s, op),
            (TypedBuf::F64(d), TypedBuf::F64(s)) => elementwise!(d, s, op),
            (TypedBuf::I32(d), TypedBuf::I32(s)) => elementwise!(d, s, op),
            (TypedBuf::I64(d), TypedBuf::I64(s)) => elementwise!(d, s, op),
            _ => unreachable!("dtype equality checked above"),
        }
        Ok(())
    }

    /// Multiply every element by `factor` (used for the `1/P` averaging in
    /// Algorithm 2 line 6). Integer buffers round toward zero.
    pub fn scale(&mut self, factor: f64) {
        match self {
            TypedBuf::F32(v) => {
                let f = factor as f32;
                for x in v.iter_mut() {
                    *x *= f;
                }
            }
            TypedBuf::F64(v) => {
                for x in v.iter_mut() {
                    *x *= factor;
                }
            }
            TypedBuf::I32(v) => {
                for x in v.iter_mut() {
                    *x = (*x as f64 * factor) as i32;
                }
            }
            TypedBuf::I64(v) => {
                for x in v.iter_mut() {
                    *x = (*x as f64 * factor) as i64;
                }
            }
        }
    }

    /// Set every element to zero, keeping the allocation (send-buffer reset
    /// to G_null after a contribution is consumed, Fig. 7).
    pub fn clear(&mut self) {
        match self {
            TypedBuf::F32(v) => v.iter_mut().for_each(|x| *x = 0.0),
            TypedBuf::F64(v) => v.iter_mut().for_each(|x| *x = 0.0),
            TypedBuf::I32(v) => v.iter_mut().for_each(|x| *x = 0),
            TypedBuf::I64(v) => v.iter_mut().for_each(|x| *x = 0),
        }
    }

    /// View as `&[f32]`, if that is the dtype.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match self {
            TypedBuf::F32(v) => Some(v),
            _ => None,
        }
    }

    /// Mutable view as `&mut [f32]`, if that is the dtype.
    pub fn as_f32_mut(&mut self) -> Option<&mut [f32]> {
        match self {
            TypedBuf::F32(v) => Some(v),
            _ => None,
        }
    }

    /// View as `&[f64]`, if that is the dtype.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            TypedBuf::F64(v) => Some(v),
            _ => None,
        }
    }

    /// View as `&[i32]`, if that is the dtype.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match self {
            TypedBuf::I32(v) => Some(v),
            _ => None,
        }
    }

    /// View as `&[i64]`, if that is the dtype.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            TypedBuf::I64(v) => Some(v),
            _ => None,
        }
    }

    /// True if every element is exactly zero (a null contribution).
    pub fn is_null(&self) -> bool {
        match self {
            TypedBuf::F32(v) => v.iter().all(|x| *x == 0.0),
            TypedBuf::F64(v) => v.iter().all(|x| *x == 0.0),
            TypedBuf::I32(v) => v.iter().all(|x| *x == 0),
            TypedBuf::I64(v) => v.iter().all(|x| *x == 0),
        }
    }

    /// Elementwise `self = self ⊕ decode(bytes)` directly over a borrowed
    /// little-endian byte slice — the reduce-from-wire path the receive
    /// side uses to fold an incoming frame into an accumulator without
    /// first materializing a second `TypedBuf`. `bytes` must be the wire
    /// representation ([`TypedBuf::extend_le_bytes`]) of a buffer with
    /// this dtype and length. This is the primitive behind
    /// `Payload::reduce_assign` on wire-borne payloads (the engine's
    /// `Combine` over a TCP-received chunk) and `Matcher::recv_combine`.
    pub fn combine_le_bytes(&mut self, bytes: &[u8], op: ReduceOp) -> Result<(), BufError> {
        let len = self.len();
        self.combine_le_bytes_at(0, len, bytes, op)
    }

    /// Range form of [`TypedBuf::combine_le_bytes`]: fold the wire bytes
    /// into `self[dst_start .. dst_start + len]`.
    pub fn combine_le_bytes_at(
        &mut self,
        dst_start: usize,
        len: usize,
        bytes: &[u8],
        op: ReduceOp,
    ) -> Result<(), BufError> {
        let esz = self.dtype().size_of();
        if bytes.len() != len * esz {
            return Err(BufError::LenMismatch {
                expected: len,
                got: bytes.len() / esz,
            });
        }
        if dst_start + len > self.len() {
            return Err(BufError::LenMismatch {
                expected: self.len(),
                got: dst_start + len,
            });
        }
        macro_rules! fold_chunks {
            ($dst:expr, $ty:ty, $n:literal) => {{
                let dst = &mut $dst[dst_start..dst_start + len];
                let src = bytes
                    .chunks_exact($n)
                    .map(|c| <$ty>::from_le_bytes(c.try_into().expect("exact chunk")));
                match op {
                    ReduceOp::Sum => dst.iter_mut().zip(src).for_each(|(d, s)| *d += s),
                    ReduceOp::Prod => dst.iter_mut().zip(src).for_each(|(d, s)| *d *= s),
                    ReduceOp::Min => dst.iter_mut().zip(src).for_each(|(d, s)| {
                        if s < *d {
                            *d = s;
                        }
                    }),
                    ReduceOp::Max => dst.iter_mut().zip(src).for_each(|(d, s)| {
                        if s > *d {
                            *d = s;
                        }
                    }),
                }
            }};
        }
        match self {
            TypedBuf::F32(d) => fold_chunks!(d, f32, 4),
            TypedBuf::F64(d) => fold_chunks!(d, f64, 8),
            TypedBuf::I32(d) => fold_chunks!(d, i32, 4),
            TypedBuf::I64(d) => fold_chunks!(d, i64, 8),
        }
        Ok(())
    }

    /// Elementwise `self ⊕= src[src_start .. src_start + self.len()]` —
    /// the range-aware combine a sub-range payload view reduces through.
    pub fn combine_offset(
        &mut self,
        src: &TypedBuf,
        src_start: usize,
        op: ReduceOp,
    ) -> Result<(), BufError> {
        if self.dtype() != src.dtype() {
            return Err(BufError::DTypeMismatch {
                expected: self.dtype(),
                got: src.dtype(),
            });
        }
        let len = self.len();
        if src_start + len > src.len() {
            return Err(BufError::LenMismatch {
                expected: src.len(),
                got: src_start + len,
            });
        }
        match (self, src) {
            (TypedBuf::F32(d), TypedBuf::F32(s)) => {
                elementwise!(d, s[src_start..src_start + len], op)
            }
            (TypedBuf::F64(d), TypedBuf::F64(s)) => {
                elementwise!(d, s[src_start..src_start + len], op)
            }
            (TypedBuf::I32(d), TypedBuf::I32(s)) => {
                elementwise!(d, s[src_start..src_start + len], op)
            }
            (TypedBuf::I64(d), TypedBuf::I64(s)) => {
                elementwise!(d, s[src_start..src_start + len], op)
            }
            _ => unreachable!("dtype equality checked above"),
        }
        Ok(())
    }

    /// Fused single-pass `self[i] = a[a_start + i] ⊕ b[b_start + i]` over
    /// all of `self`, fully overwriting any previous contents (so a dirty
    /// recycled buffer is a valid destination). This is the one-pass
    /// combine `Payload::reduce_assign` uses when the destination is
    /// shared: instead of materializing a private copy of `a` and then
    /// folding `b` into it (two passes, one allocation touched twice), the
    /// fold happens while writing the output. Operand order matches
    /// [`TypedBuf::combine`] (`a` is the accumulator side), so results are
    /// bit-identical to the two-pass fold.
    pub fn fill_combine(
        &mut self,
        a: &TypedBuf,
        a_start: usize,
        b: &TypedBuf,
        b_start: usize,
        op: ReduceOp,
    ) -> Result<(), BufError> {
        if self.dtype() != a.dtype() {
            return Err(BufError::DTypeMismatch {
                expected: self.dtype(),
                got: a.dtype(),
            });
        }
        if self.dtype() != b.dtype() {
            return Err(BufError::DTypeMismatch {
                expected: self.dtype(),
                got: b.dtype(),
            });
        }
        let len = self.len();
        if a_start + len > a.len() {
            return Err(BufError::LenMismatch {
                expected: a.len(),
                got: a_start + len,
            });
        }
        if b_start + len > b.len() {
            return Err(BufError::LenMismatch {
                expected: b.len(),
                got: b_start + len,
            });
        }
        match (self, a, b) {
            (TypedBuf::F32(o), TypedBuf::F32(x), TypedBuf::F32(y)) => {
                fused_elementwise!(o, x[a_start..a_start + len], y[b_start..b_start + len], op)
            }
            (TypedBuf::F64(o), TypedBuf::F64(x), TypedBuf::F64(y)) => {
                fused_elementwise!(o, x[a_start..a_start + len], y[b_start..b_start + len], op)
            }
            (TypedBuf::I32(o), TypedBuf::I32(x), TypedBuf::I32(y)) => {
                fused_elementwise!(o, x[a_start..a_start + len], y[b_start..b_start + len], op)
            }
            (TypedBuf::I64(o), TypedBuf::I64(x), TypedBuf::I64(y)) => {
                fused_elementwise!(o, x[a_start..a_start + len], y[b_start..b_start + len], op)
            }
            _ => unreachable!("dtype equality checked above"),
        }
        Ok(())
    }

    /// Wire-source form of [`TypedBuf::fill_combine`]: single-pass
    /// `self[i] = a[a_start + i] ⊕ decode(bytes)[i]`, decoding the
    /// little-endian frame while folding — no intermediate buffer, same
    /// semantics as [`TypedBuf::combine_le_bytes_at`] (the decoded side is
    /// the incoming operand).
    pub fn fill_combine_le_bytes(
        &mut self,
        a: &TypedBuf,
        a_start: usize,
        bytes: &[u8],
        op: ReduceOp,
    ) -> Result<(), BufError> {
        if self.dtype() != a.dtype() {
            return Err(BufError::DTypeMismatch {
                expected: self.dtype(),
                got: a.dtype(),
            });
        }
        let len = self.len();
        let esz = self.dtype().size_of();
        if bytes.len() != len * esz {
            return Err(BufError::LenMismatch {
                expected: len,
                got: bytes.len() / esz,
            });
        }
        if a_start + len > a.len() {
            return Err(BufError::LenMismatch {
                expected: a.len(),
                got: a_start + len,
            });
        }
        macro_rules! fused_chunks {
            ($out:expr, $a:expr, $ty:ty, $n:literal) => {{
                let acc = &$a[a_start..a_start + len];
                let src = bytes
                    .chunks_exact($n)
                    .map(|c| <$ty>::from_le_bytes(c.try_into().expect("exact chunk")));
                match op {
                    ReduceOp::Sum => $out
                        .iter_mut()
                        .zip(acc.iter().zip(src))
                        .for_each(|(o, (x, y))| *o = *x + y),
                    ReduceOp::Prod => $out
                        .iter_mut()
                        .zip(acc.iter().zip(src))
                        .for_each(|(o, (x, y))| *o = *x * y),
                    ReduceOp::Min => $out
                        .iter_mut()
                        .zip(acc.iter().zip(src))
                        .for_each(|(o, (x, y))| *o = if y < *x { y } else { *x }),
                    ReduceOp::Max => $out
                        .iter_mut()
                        .zip(acc.iter().zip(src))
                        .for_each(|(o, (x, y))| *o = if y > *x { y } else { *x }),
                }
            }};
        }
        match (self, a) {
            (TypedBuf::F32(o), TypedBuf::F32(x)) => fused_chunks!(o, x, f32, 4),
            (TypedBuf::F64(o), TypedBuf::F64(x)) => fused_chunks!(o, x, f64, 8),
            (TypedBuf::I32(o), TypedBuf::I32(x)) => fused_chunks!(o, x, i32, 4),
            (TypedBuf::I64(o), TypedBuf::I64(x)) => fused_chunks!(o, x, i64, 8),
            _ => unreachable!("dtype equality checked above"),
        }
        Ok(())
    }

    /// Copy `src[src_start .. src_start + len]` into
    /// `self[dst_start .. dst_start + len]`.
    pub fn copy_from_at(
        &mut self,
        dst_start: usize,
        src: &TypedBuf,
        src_start: usize,
        len: usize,
    ) -> Result<(), BufError> {
        if self.dtype() != src.dtype() {
            return Err(BufError::DTypeMismatch {
                expected: self.dtype(),
                got: src.dtype(),
            });
        }
        if dst_start + len > self.len() || src_start + len > src.len() {
            return Err(BufError::LenMismatch {
                expected: self.len(),
                got: dst_start + len,
            });
        }
        match (self, src) {
            (TypedBuf::F32(d), TypedBuf::F32(s)) => {
                d[dst_start..dst_start + len].copy_from_slice(&s[src_start..src_start + len])
            }
            (TypedBuf::F64(d), TypedBuf::F64(s)) => {
                d[dst_start..dst_start + len].copy_from_slice(&s[src_start..src_start + len])
            }
            (TypedBuf::I32(d), TypedBuf::I32(s)) => {
                d[dst_start..dst_start + len].copy_from_slice(&s[src_start..src_start + len])
            }
            (TypedBuf::I64(d), TypedBuf::I64(s)) => {
                d[dst_start..dst_start + len].copy_from_slice(&s[src_start..src_start + len])
            }
            _ => unreachable!("dtype equality checked above"),
        }
        Ok(())
    }

    /// Decode the wire bytes of `bytes.len() / size_of(dtype)` elements
    /// into `self[dst_start ..]` — the write-from-wire counterpart of
    /// [`TypedBuf::combine_le_bytes_at`] (allgather hops copy, they do
    /// not reduce).
    pub fn write_le_bytes_at(&mut self, dst_start: usize, bytes: &[u8]) -> Result<(), BufError> {
        let esz = self.dtype().size_of();
        if !bytes.len().is_multiple_of(esz) {
            return Err(BufError::LenMismatch {
                expected: bytes.len().div_ceil(esz),
                got: bytes.len() / esz,
            });
        }
        let len = bytes.len() / esz;
        if dst_start + len > self.len() {
            return Err(BufError::LenMismatch {
                expected: self.len(),
                got: dst_start + len,
            });
        }
        macro_rules! write_chunks {
            ($dst:expr, $ty:ty, $n:literal) => {{
                for (d, c) in $dst[dst_start..dst_start + len]
                    .iter_mut()
                    .zip(bytes.chunks_exact($n))
                {
                    *d = <$ty>::from_le_bytes(c.try_into().expect("exact chunk"));
                }
            }};
        }
        match self {
            TypedBuf::F32(d) => write_chunks!(d, f32, 4),
            TypedBuf::F64(d) => write_chunks!(d, f64, 8),
            TypedBuf::I32(d) => write_chunks!(d, i32, 4),
            TypedBuf::I64(d) => write_chunks!(d, i64, 8),
        }
        Ok(())
    }

    /// Materialize `self[start .. start + len]` as an owned buffer (the
    /// chunk extraction of the segmented schedule's `SliceCopy` op).
    pub fn slice_buf(&self, start: usize, len: usize) -> TypedBuf {
        assert!(start + len <= self.len(), "slice_buf out of range");
        match self {
            TypedBuf::F32(v) => TypedBuf::F32(v[start..start + len].to_vec()),
            TypedBuf::F64(v) => TypedBuf::F64(v[start..start + len].to_vec()),
            TypedBuf::I32(v) => TypedBuf::I32(v[start..start + len].to_vec()),
            TypedBuf::I64(v) => TypedBuf::I64(v[start..start + len].to_vec()),
        }
    }

    /// Append the elements to `out` as little-endian raw bytes — the wire
    /// representation used by the TCP transport's framing (exact bit
    /// patterns, so floats round-trip losslessly).
    pub fn extend_le_bytes(&self, out: &mut Vec<u8>) {
        self.extend_le_bytes_range(0, self.len(), out);
    }

    /// Range form of [`TypedBuf::extend_le_bytes`]: encode only
    /// `self[start .. start + len]` — what lets a sub-range payload view
    /// hit the wire without first materializing the slice.
    pub fn extend_le_bytes_range(&self, start: usize, len: usize, out: &mut Vec<u8>) {
        assert!(start + len <= self.len(), "encode range out of bounds");
        out.reserve(len * self.dtype().size_of());
        macro_rules! encode {
            ($v:expr) => {
                for x in &$v[start..start + len] {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            };
        }
        match self {
            TypedBuf::F32(v) => encode!(v),
            TypedBuf::F64(v) => encode!(v),
            TypedBuf::I32(v) => encode!(v),
            TypedBuf::I64(v) => encode!(v),
        }
    }

    /// Rebuild a buffer from the little-endian raw bytes produced by
    /// [`TypedBuf::extend_le_bytes`]. `None` if `bytes` is not a whole
    /// number of `dtype` elements.
    pub fn from_le_bytes(dtype: DType, bytes: &[u8]) -> Option<Self> {
        let esz = dtype.size_of();
        if !bytes.len().is_multiple_of(esz) {
            return None;
        }
        Some(match dtype {
            DType::F32 => TypedBuf::F32(
                bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                    .collect(),
            ),
            DType::F64 => TypedBuf::F64(
                bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                    .collect(),
            ),
            DType::I32 => TypedBuf::I32(
                bytes
                    .chunks_exact(4)
                    .map(|c| i32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                    .collect(),
            ),
            DType::I64 => TypedBuf::I64(
                bytes
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                    .collect(),
            ),
        })
    }
}

/// Elementwise `dst = dst ⊕ src` over bare `f32` slices — the shared
/// reduction kernel for code that operates on borrowed slices (the direct
/// ring/Rabenseifner algorithms) rather than owned buffers.
pub fn reduce_f32_slices(dst: &mut [f32], src: &[f32], op: ReduceOp) {
    debug_assert_eq!(dst.len(), src.len());
    match op {
        ReduceOp::Sum => dst.iter_mut().zip(src).for_each(|(d, s)| *d += *s),
        ReduceOp::Prod => dst.iter_mut().zip(src).for_each(|(d, s)| *d *= *s),
        ReduceOp::Min => dst.iter_mut().zip(src).for_each(|(d, s)| *d = d.min(*s)),
        ReduceOp::Max => dst.iter_mut().zip(src).for_each(|(d, s)| *d = d.max(*s)),
    }
}

/// Elementwise `dst = dst ⊕ decode_f32(bytes)` over a bare slice — the
/// reduce-from-wire kernel for slice-based consumers (the direct ring
/// algorithms fold a TCP frame's borrowed bytes straight into their chunk
/// accumulator; see `Matcher::recv_combine`).
pub fn reduce_f32_from_le_bytes(dst: &mut [f32], bytes: &[u8], op: ReduceOp) {
    debug_assert_eq!(dst.len() * 4, bytes.len());
    let src = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")));
    match op {
        ReduceOp::Sum => dst.iter_mut().zip(src).for_each(|(d, s)| *d += s),
        ReduceOp::Prod => dst.iter_mut().zip(src).for_each(|(d, s)| *d *= s),
        ReduceOp::Min => dst.iter_mut().zip(src).for_each(|(d, s)| *d = d.min(s)),
        ReduceOp::Max => dst.iter_mut().zip(src).for_each(|(d, s)| *d = d.max(s)),
    }
}

/// Decode the wire bytes of f32 elements into `dst` (the copy
/// counterpart of [`reduce_f32_from_le_bytes`], for allgather hops).
pub fn write_f32_from_le_bytes(dst: &mut [f32], bytes: &[u8]) {
    debug_assert_eq!(dst.len() * 4, bytes.len());
    for (d, c) in dst.iter_mut().zip(bytes.chunks_exact(4)) {
        *d = f32::from_le_bytes(c.try_into().expect("4-byte chunk"));
    }
}

impl From<Vec<f32>> for TypedBuf {
    fn from(v: Vec<f32>) -> Self {
        TypedBuf::F32(v)
    }
}

impl From<Vec<f64>> for TypedBuf {
    fn from(v: Vec<f64>) -> Self {
        TypedBuf::F64(v)
    }
}

impl From<Vec<i32>> for TypedBuf {
    fn from(v: Vec<i32>) -> Self {
        TypedBuf::I32(v)
    }
}

impl From<Vec<i64>> for TypedBuf {
    fn from(v: Vec<i64>) -> Self {
        TypedBuf::I64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape() {
        let b = TypedBuf::zeros(DType::F32, 7);
        assert_eq!(b.dtype(), DType::F32);
        assert_eq!(b.len(), 7);
        assert_eq!(b.byte_len(), 28);
        assert!(b.is_null());
    }

    #[test]
    fn combine_sum_f32() {
        let mut a = TypedBuf::from(vec![1.0f32, 2.0, 3.0]);
        let b = TypedBuf::from(vec![10.0f32, 20.0, 30.0]);
        a.combine(&b, ReduceOp::Sum).unwrap();
        assert_eq!(a.as_f32().unwrap(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn combine_min_max_i64() {
        let mut a = TypedBuf::from(vec![1i64, 5, -3]);
        let b = TypedBuf::from(vec![2i64, 4, -7]);
        let mut a2 = a.clone();
        a.combine(&b, ReduceOp::Min).unwrap();
        assert_eq!(a.as_i64().unwrap(), &[1, 4, -7]);
        a2.combine(&b, ReduceOp::Max).unwrap();
        assert_eq!(a2.as_i64().unwrap(), &[2, 5, -3]);
    }

    #[test]
    fn combine_prod_f64() {
        let mut a = TypedBuf::from(vec![2.0f64, 3.0]);
        let b = TypedBuf::from(vec![4.0f64, 5.0]);
        a.combine(&b, ReduceOp::Prod).unwrap();
        assert_eq!(a.as_f64().unwrap(), &[8.0, 15.0]);
    }

    #[test]
    fn combine_rejects_mismatched_dtype() {
        let mut a = TypedBuf::from(vec![1.0f32]);
        let b = TypedBuf::from(vec![1.0f64]);
        assert!(matches!(
            a.combine(&b, ReduceOp::Sum),
            Err(BufError::DTypeMismatch { .. })
        ));
    }

    #[test]
    fn combine_rejects_mismatched_len() {
        let mut a = TypedBuf::from(vec![1.0f32, 2.0]);
        let b = TypedBuf::from(vec![1.0f32]);
        assert!(matches!(
            a.combine(&b, ReduceOp::Sum),
            Err(BufError::LenMismatch { .. })
        ));
    }

    #[test]
    fn scale_averages() {
        let mut a = TypedBuf::from(vec![8.0f32, 4.0]);
        a.scale(0.25);
        assert_eq!(a.as_f32().unwrap(), &[2.0, 1.0]);
    }

    #[test]
    fn clear_keeps_len() {
        let mut a = TypedBuf::from(vec![8.0f32, 4.0]);
        a.clear();
        assert_eq!(a.len(), 2);
        assert!(a.is_null());
    }

    #[test]
    fn scale_integer_truncates() {
        let mut a = TypedBuf::from(vec![7i32, -7]);
        a.scale(0.5);
        assert_eq!(a.as_i32().unwrap(), &[3, -3]);
    }

    #[test]
    fn le_bytes_round_trip_all_dtypes() {
        let bufs = [
            TypedBuf::from(vec![1.5f32, -0.0, f32::MIN_POSITIVE, 3.25e7]),
            TypedBuf::from(vec![std::f64::consts::PI, -1e-300]),
            TypedBuf::from(vec![i32::MIN, -1, 0, i32::MAX]),
            TypedBuf::from(vec![i64::MIN, 42, i64::MAX]),
        ];
        for b in bufs {
            let mut raw = Vec::new();
            b.extend_le_bytes(&mut raw);
            assert_eq!(raw.len(), b.byte_len());
            let back = TypedBuf::from_le_bytes(b.dtype(), &raw).unwrap();
            assert_eq!(back, b);
        }
    }

    #[test]
    fn le_bytes_round_trip_zero_length() {
        for dtype in [DType::F32, DType::F64, DType::I32, DType::I64] {
            let b = TypedBuf::zeros(dtype, 0);
            let mut raw = Vec::new();
            b.extend_le_bytes(&mut raw);
            assert!(raw.is_empty());
            let back = TypedBuf::from_le_bytes(dtype, &raw).unwrap();
            assert_eq!(back.len(), 0);
            assert_eq!(back.dtype(), dtype);
        }
    }

    #[test]
    fn le_bytes_reject_ragged_input() {
        assert!(TypedBuf::from_le_bytes(DType::F32, &[0u8; 6]).is_none());
        assert!(TypedBuf::from_le_bytes(DType::I64, &[0u8; 12]).is_none());
    }

    #[test]
    fn combine_le_bytes_matches_combine() {
        let cases = [
            (
                TypedBuf::from(vec![1.5f32, -2.0]),
                TypedBuf::from(vec![0.5f32, 4.0]),
            ),
            (
                TypedBuf::from(vec![1.0f64, 9.0]),
                TypedBuf::from(vec![2.0f64, -3.0]),
            ),
            (
                TypedBuf::from(vec![1i32, -5]),
                TypedBuf::from(vec![7i32, 5]),
            ),
            (
                TypedBuf::from(vec![10i64, 20]),
                TypedBuf::from(vec![-1i64, 2]),
            ),
        ];
        for (a, b) in cases {
            for op in [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max] {
                let mut via_combine = a.clone();
                via_combine.combine(&b, op).unwrap();
                let mut wire = Vec::new();
                b.extend_le_bytes(&mut wire);
                let mut via_bytes = a.clone();
                via_bytes.combine_le_bytes(&wire, op).unwrap();
                assert_eq!(via_bytes, via_combine, "{op:?}");
            }
        }
    }

    #[test]
    fn combine_le_bytes_rejects_wrong_length() {
        let mut a = TypedBuf::from(vec![1.0f32, 2.0]);
        assert!(matches!(
            a.combine_le_bytes(&[0u8; 4], ReduceOp::Sum),
            Err(BufError::LenMismatch { .. })
        ));
    }

    #[test]
    fn reduce_f32_slices_all_ops() {
        let src = [2.0f32, -1.0];
        let mut d = [1.0f32, 3.0];
        reduce_f32_slices(&mut d, &src, ReduceOp::Sum);
        assert_eq!(d, [3.0, 2.0]);
        let mut d = [1.0f32, 3.0];
        reduce_f32_slices(&mut d, &src, ReduceOp::Prod);
        assert_eq!(d, [2.0, -3.0]);
        let mut d = [1.0f32, 3.0];
        reduce_f32_slices(&mut d, &src, ReduceOp::Min);
        assert_eq!(d, [1.0, -1.0]);
        let mut d = [1.0f32, 3.0];
        reduce_f32_slices(&mut d, &src, ReduceOp::Max);
        assert_eq!(d, [2.0, 3.0]);
    }
}
