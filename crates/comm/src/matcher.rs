//! Blocking point-to-point matching on top of an [`Inbox`].
//!
//! The schedule engine does its own matching; `Matcher` exists for direct
//! point-to-point use — unit tests, simple coordination protocols (the
//! Horovod-style negotiation baseline), and examples that want MPI-flavoured
//! `recv(src, tag)` semantics without standing up the engine.

use crate::buf::ReduceOp;
use crate::stats::CommStats;
use crate::tag::{Message, Rank, WireTag};
use crate::world::{Envelope, Inbox};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Wraps an [`Inbox`] with an unexpected-message queue so receives can be
/// posted in any order relative to arrivals.
pub struct Matcher {
    inbox: Inbox,
    /// Messages that arrived before a matching receive was posted.
    unexpected: HashMap<(Rank, WireTag), VecDeque<Message>>,
    shutdown_seen: bool,
    /// Receive-side accounting sink, when the caller wants consumed
    /// messages counted (see [`Matcher::with_stats`]).
    stats: Option<Arc<CommStats>>,
}

impl Matcher {
    /// Wrap an inbox for tag-matched receiving.
    pub fn new(inbox: Inbox) -> Self {
        Matcher {
            inbox,
            unexpected: HashMap::new(),
            shutdown_seen: false,
            stats: None,
        }
    }

    /// Like [`Matcher::new`], but every data message drained from the
    /// inbox bumps the rank's receive counters (`recvs`,
    /// `bytes_received`) and — at verbose trace level — records a
    /// [`pcoll_obs::EventKind::MsgRecv`] event. Pass the rank's own
    /// [`CommStats`] (from `Communicator::comm_stats` before splitting).
    pub fn with_stats(inbox: Inbox, stats: Arc<CommStats>) -> Self {
        Matcher {
            stats: Some(stats),
            ..Matcher::new(inbox)
        }
    }

    /// Account one data message drained from the inbox. Matching out of
    /// the unexpected queue never re-counts: a message is tallied exactly
    /// once, when consumed off the wire.
    fn note_recv(&self, m: &Message) {
        let Some(stats) = &self.stats else { return };
        let bytes = m.payload.as_ref().map_or(0, |p| p.byte_len());
        stats.record_recv(bytes);
        stats
            .recorder()
            .record(pcoll_obs::LEVEL_VERBOSE, || pcoll_obs::EventKind::MsgRecv {
                coll: u64::from(m.tag.coll.0),
                round: m.tag.round,
                sem: m.tag.sem,
                src: m.src as u32,
                bytes: bytes as u64,
            });
    }

    /// True once a shutdown envelope has been drained.
    pub fn shutdown_seen(&self) -> bool {
        self.shutdown_seen
    }

    /// Blocking receive of the message matching `(src, tag)` exactly.
    /// Returns `None` if the world is tearing down instead.
    pub fn recv(&mut self, src: Rank, tag: WireTag) -> Option<Message> {
        if let Some(q) = self.unexpected.get_mut(&(src, tag)) {
            if let Some(m) = q.pop_front() {
                return Some(m);
            }
        }
        loop {
            match self.inbox.recv()? {
                Envelope::Data(m) => {
                    self.note_recv(&m);
                    if m.src == src && m.tag == tag {
                        return Some(m);
                    }
                    self.unexpected
                        .entry((m.src, m.tag))
                        .or_default()
                        .push_back(m);
                }
                Envelope::Shutdown => {
                    self.shutdown_seen = true;
                    return None;
                }
                // Matcher callers do their own liveness handling (or none);
                // the notification is consumed so matching keeps draining.
                Envelope::PeerDown { .. } | Envelope::PeerUp { .. } => {}
            }
        }
    }

    /// Like [`Matcher::recv`] but gives up after `timeout`.
    pub fn recv_timeout(&mut self, src: Rank, tag: WireTag, timeout: Duration) -> Option<Message> {
        if let Some(q) = self.unexpected.get_mut(&(src, tag)) {
            if let Some(m) = q.pop_front() {
                return Some(m);
            }
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return None;
            }
            match self.inbox.recv_timeout(left)? {
                Envelope::Data(m) => {
                    self.note_recv(&m);
                    if m.src == src && m.tag == tag {
                        return Some(m);
                    }
                    self.unexpected
                        .entry((m.src, m.tag))
                        .or_default()
                        .push_back(m);
                }
                Envelope::Shutdown => {
                    self.shutdown_seen = true;
                    return None;
                }
                Envelope::PeerDown { .. } | Envelope::PeerUp { .. } => {}
            }
        }
    }

    /// Blocking receive of `(src, tag)` that folds the payload straight
    /// into `dst` under `op` — the reduce-from-wire receive. On the TCP
    /// backend the payload still holds the frame's raw little-endian
    /// bytes, so the fold (`Payload::reduce_into_f32`, backed by the
    /// `combine_le_bytes` family) reads them without materializing an
    /// intermediate buffer; in-process it reduces over the sender's
    /// shared allocation. Returns `None` on world teardown.
    pub fn recv_combine(
        &mut self,
        src: Rank,
        tag: WireTag,
        dst: &mut [f32],
        op: ReduceOp,
    ) -> Option<()> {
        let msg = self.recv(src, tag)?;
        let payload = msg.payload.expect("recv_combine expects a data message");
        payload
            .reduce_into_f32(dst, op)
            .expect("recv_combine shape mismatch");
        if let Some(stats) = &self.stats {
            stats.recorder().record(pcoll_obs::LEVEL_VERBOSE, || {
                pcoll_obs::EventKind::MsgCombine {
                    coll: u64::from(tag.coll.0),
                    round: tag.round,
                    src: src as u32,
                    bytes: payload.byte_len() as u64,
                }
            });
        }
        Some(())
    }

    /// Blocking receive of `(src, tag)` that copies the payload into
    /// `dst` (the allgather counterpart of [`Matcher::recv_combine`]).
    pub fn recv_copy(&mut self, src: Rank, tag: WireTag, dst: &mut [f32]) -> Option<()> {
        let msg = self.recv(src, tag)?;
        let payload = msg.payload.expect("recv_copy expects a data message");
        payload
            .copy_into_f32(dst)
            .expect("recv_copy shape mismatch");
        Some(())
    }

    /// Receive from any source with the given tag (MPI_ANY_SOURCE flavour).
    pub fn recv_any(&mut self, tag: WireTag) -> Option<Message> {
        for ((_, t), q) in self.unexpected.iter_mut() {
            if *t == tag {
                if let Some(m) = q.pop_front() {
                    return Some(m);
                }
            }
        }
        loop {
            match self.inbox.recv()? {
                Envelope::Data(m) => {
                    self.note_recv(&m);
                    if m.tag == tag {
                        return Some(m);
                    }
                    self.unexpected
                        .entry((m.src, m.tag))
                        .or_default()
                        .push_back(m);
                }
                Envelope::Shutdown => {
                    self.shutdown_seen = true;
                    return None;
                }
                Envelope::PeerDown { .. } | Envelope::PeerUp { .. } => {}
            }
        }
    }

    /// Number of buffered unexpected messages (introspection for tests).
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.values().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::CollId;
    use crate::world::{World, WorldConfig};
    use crate::TypedBuf;

    fn tag(sem: u32) -> WireTag {
        WireTag::new(CollId(1), 0, sem)
    }

    #[test]
    fn out_of_order_receive_matches() {
        World::launch(WorldConfig::instant(2), |c| {
            let me = c.rank();
            let peer = 1 - me;
            let (h, inbox) = c.split();
            let mut m = Matcher::new(inbox);
            // Both send two differently-tagged messages, then receive in
            // the opposite order from how they will likely arrive.
            h.send(peer, tag(0), Some(TypedBuf::from(vec![0i32])));
            h.send(peer, tag(1), Some(TypedBuf::from(vec![1i32])));
            let b = m.recv(peer, tag(1)).unwrap();
            let a = m.recv(peer, tag(0)).unwrap();
            assert_eq!(a.payload.unwrap().as_i32().unwrap(), &[0]);
            assert_eq!(b.payload.unwrap().as_i32().unwrap(), &[1]);
        });
    }

    #[test]
    fn recv_any_source() {
        World::launch(WorldConfig::instant(4), |c| {
            let me = c.rank();
            let (h, inbox) = c.split();
            let mut m = Matcher::new(inbox);
            if me == 0 {
                let mut seen = Vec::new();
                for _ in 0..3 {
                    let msg = m.recv_any(tag(5)).unwrap();
                    seen.push(msg.src);
                }
                seen.sort_unstable();
                assert_eq!(seen, vec![1, 2, 3]);
            } else {
                h.send(0, tag(5), None);
            }
        });
    }

    #[test]
    fn with_stats_counts_each_message_once_at_consumption() {
        World::launch(WorldConfig::instant(2), |c| {
            let me = c.rank();
            let peer = 1 - me;
            let stats = c.comm_stats();
            let (h, inbox) = c.split();
            let mut m = Matcher::with_stats(inbox, Arc::clone(&stats));
            // Two data messages received in the opposite order from
            // arrival (one transits the unexpected queue) plus one
            // payload-less control message. Each must be tallied exactly
            // once — when drained off the inbox, not when rematched.
            h.send(peer, tag(0), Some(TypedBuf::from(vec![0i32])));
            h.send(peer, tag(1), Some(TypedBuf::from(vec![1i32, 2i32])));
            h.send(peer, tag(2), None);
            assert!(m.recv(peer, tag(1)).is_some());
            assert!(m.recv(peer, tag(0)).is_some());
            assert!(m.recv(peer, tag(2)).is_some());
            let snap = stats.snapshot();
            assert_eq!(snap.recvs, 3, "one tally per consumed message");
            assert_eq!(snap.bytes_received, 12, "4 + 8 + 0 payload bytes");
        });
    }

    #[test]
    fn recv_timeout_expires() {
        World::launch(WorldConfig::instant(2), |c| {
            let me = c.rank();
            let peer = 1 - me;
            let (_h, inbox) = c.split();
            let mut m = Matcher::new(inbox);
            // Nothing was sent on tag 9: must time out quickly.
            assert!(m
                .recv_timeout(peer, tag(9), Duration::from_millis(30))
                .is_none());
        });
    }
}
