//! Blocking point-to-point matching on top of an [`Inbox`].
//!
//! The schedule engine does its own matching; `Matcher` exists for direct
//! point-to-point use — unit tests, simple coordination protocols (the
//! Horovod-style negotiation baseline), and examples that want MPI-flavoured
//! `recv(src, tag)` semantics without standing up the engine.

use crate::buf::ReduceOp;
use crate::tag::{Message, Rank, WireTag};
use crate::world::{Envelope, Inbox};
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// Wraps an [`Inbox`] with an unexpected-message queue so receives can be
/// posted in any order relative to arrivals.
pub struct Matcher {
    inbox: Inbox,
    /// Messages that arrived before a matching receive was posted.
    unexpected: HashMap<(Rank, WireTag), VecDeque<Message>>,
    shutdown_seen: bool,
}

impl Matcher {
    /// Wrap an inbox for tag-matched receiving.
    pub fn new(inbox: Inbox) -> Self {
        Matcher {
            inbox,
            unexpected: HashMap::new(),
            shutdown_seen: false,
        }
    }

    /// True once a shutdown envelope has been drained.
    pub fn shutdown_seen(&self) -> bool {
        self.shutdown_seen
    }

    /// Blocking receive of the message matching `(src, tag)` exactly.
    /// Returns `None` if the world is tearing down instead.
    pub fn recv(&mut self, src: Rank, tag: WireTag) -> Option<Message> {
        if let Some(q) = self.unexpected.get_mut(&(src, tag)) {
            if let Some(m) = q.pop_front() {
                return Some(m);
            }
        }
        loop {
            match self.inbox.recv()? {
                Envelope::Data(m) => {
                    if m.src == src && m.tag == tag {
                        return Some(m);
                    }
                    self.unexpected
                        .entry((m.src, m.tag))
                        .or_default()
                        .push_back(m);
                }
                Envelope::Shutdown => {
                    self.shutdown_seen = true;
                    return None;
                }
            }
        }
    }

    /// Like [`Matcher::recv`] but gives up after `timeout`.
    pub fn recv_timeout(&mut self, src: Rank, tag: WireTag, timeout: Duration) -> Option<Message> {
        if let Some(q) = self.unexpected.get_mut(&(src, tag)) {
            if let Some(m) = q.pop_front() {
                return Some(m);
            }
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return None;
            }
            match self.inbox.recv_timeout(left)? {
                Envelope::Data(m) => {
                    if m.src == src && m.tag == tag {
                        return Some(m);
                    }
                    self.unexpected
                        .entry((m.src, m.tag))
                        .or_default()
                        .push_back(m);
                }
                Envelope::Shutdown => {
                    self.shutdown_seen = true;
                    return None;
                }
            }
        }
    }

    /// Blocking receive of `(src, tag)` that folds the payload straight
    /// into `dst` under `op` — the reduce-from-wire receive. On the TCP
    /// backend the payload still holds the frame's raw little-endian
    /// bytes, so the fold (`Payload::reduce_into_f32`, backed by the
    /// `combine_le_bytes` family) reads them without materializing an
    /// intermediate buffer; in-process it reduces over the sender's
    /// shared allocation. Returns `None` on world teardown.
    pub fn recv_combine(
        &mut self,
        src: Rank,
        tag: WireTag,
        dst: &mut [f32],
        op: ReduceOp,
    ) -> Option<()> {
        let msg = self.recv(src, tag)?;
        let payload = msg.payload.expect("recv_combine expects a data message");
        payload
            .reduce_into_f32(dst, op)
            .expect("recv_combine shape mismatch");
        Some(())
    }

    /// Blocking receive of `(src, tag)` that copies the payload into
    /// `dst` (the allgather counterpart of [`Matcher::recv_combine`]).
    pub fn recv_copy(&mut self, src: Rank, tag: WireTag, dst: &mut [f32]) -> Option<()> {
        let msg = self.recv(src, tag)?;
        let payload = msg.payload.expect("recv_copy expects a data message");
        payload
            .copy_into_f32(dst)
            .expect("recv_copy shape mismatch");
        Some(())
    }

    /// Receive from any source with the given tag (MPI_ANY_SOURCE flavour).
    pub fn recv_any(&mut self, tag: WireTag) -> Option<Message> {
        for ((_, t), q) in self.unexpected.iter_mut() {
            if *t == tag {
                if let Some(m) = q.pop_front() {
                    return Some(m);
                }
            }
        }
        loop {
            match self.inbox.recv()? {
                Envelope::Data(m) => {
                    if m.tag == tag {
                        return Some(m);
                    }
                    self.unexpected
                        .entry((m.src, m.tag))
                        .or_default()
                        .push_back(m);
                }
                Envelope::Shutdown => {
                    self.shutdown_seen = true;
                    return None;
                }
            }
        }
    }

    /// Number of buffered unexpected messages (introspection for tests).
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.values().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::CollId;
    use crate::world::{World, WorldConfig};
    use crate::TypedBuf;

    fn tag(sem: u32) -> WireTag {
        WireTag::new(CollId(1), 0, sem)
    }

    #[test]
    fn out_of_order_receive_matches() {
        World::launch(WorldConfig::instant(2), |c| {
            let me = c.rank();
            let peer = 1 - me;
            let (h, inbox) = c.split();
            let mut m = Matcher::new(inbox);
            // Both send two differently-tagged messages, then receive in
            // the opposite order from how they will likely arrive.
            h.send(peer, tag(0), Some(TypedBuf::from(vec![0i32])));
            h.send(peer, tag(1), Some(TypedBuf::from(vec![1i32])));
            let b = m.recv(peer, tag(1)).unwrap();
            let a = m.recv(peer, tag(0)).unwrap();
            assert_eq!(a.payload.unwrap().as_i32().unwrap(), &[0]);
            assert_eq!(b.payload.unwrap().as_i32().unwrap(), &[1]);
        });
    }

    #[test]
    fn recv_any_source() {
        World::launch(WorldConfig::instant(4), |c| {
            let me = c.rank();
            let (h, inbox) = c.split();
            let mut m = Matcher::new(inbox);
            if me == 0 {
                let mut seen = Vec::new();
                for _ in 0..3 {
                    let msg = m.recv_any(tag(5)).unwrap();
                    seen.push(msg.src);
                }
                seen.sort_unstable();
                assert_eq!(seen, vec![1, 2, 3]);
            } else {
                h.send(0, tag(5), None);
            }
        });
    }

    #[test]
    fn recv_timeout_expires() {
        World::launch(WorldConfig::instant(2), |c| {
            let me = c.rank();
            let peer = 1 - me;
            let (_h, inbox) = c.split();
            let mut m = Matcher::new(inbox);
            // Nothing was sent on tag 9: must time out quickly.
            assert!(m
                .recv_timeout(peer, tag(9), Duration::from_millis(30))
                .is_none());
        });
    }
}
