//! Transport backends: in-process mailboxes vs. process-per-rank TCP.
//!
//! The in-process backend (the [`crate::World::launch`] default) moves
//! [`Envelope`]s over crossbeam channels between rank threads. The TCP
//! backend runs every rank as its own OS process over loopback sockets:
//!
//! - **Framing.** Messages travel as length-prefixed binary frames
//!   (`encode_data` / `decode_frame`): a fixed header (src rank,
//!   collective id, round, semantic tag) followed by the payload's dtype
//!   and raw little-endian element bytes. Large tensor frames are written
//!   in bounded chunks so one multi-MiB gradient cannot monopolize a
//!   writer's syscall.
//! - **Ordering.** Each unordered rank pair shares exactly one duplex
//!   connection, so TCP's byte-stream ordering *is* the MPI
//!   non-overtaking rule the in-process delivery thread models. When a
//!   [`crate::NetworkModel`] is configured, the sender-side delivery
//!   thread shapes messages *before* they reach the socket writers, and
//!   its per-pair clamp keeps the release order FIFO — so modeled delays
//!   compose with real socket transit and fig-reproduction runs stay
//!   comparable across backends.
//! - **Shutdown handshake.** The in-memory world could simply drop
//!   mailboxes; over sockets, a finishing rank first drains its delivery
//!   heap and writer queues, then sends a `GOODBYE` frame on every
//!   connection and half-closes it. Peer readers stop at `GOODBYE`, which
//!   replaces the in-memory [`Envelope::Shutdown`] drop semantics with an
//!   orderly drain: everything sent before a rank finished is delivered.
//! - **Rendezvous.** [`launch_tcp`] in a parent process binds a
//!   listener, then re-`exec`s the current binary once per rank (the
//!   `mpirun` stand-in). Workers report their own advertised mesh
//!   address to the parent, receive the full address map, and build the
//!   pairwise mesh (each rank dials the listeners of all lower ranks
//!   and accepts from all higher ones). Each rank's closure result
//!   returns to the parent as JSON over its rendezvous connection, so
//!   `launch_tcp` has the same `Vec<T>` shape as `World::launch` — and
//!   because results travel over that connection (never through shared
//!   memory or the exit status), collection works identically when the
//!   workers run on other hosts.
//! - **External launch / multi-host.** [`TcpOpts::listen`] (or
//!   `PCOLL_TCP_LISTEN`) switches the parent to externally launched
//!   workers: it binds the given address — possibly on a routable
//!   interface — and spawns nothing; the operator starts one worker per
//!   rank anywhere, with `PCOLL_TCP_RANK` / `PCOLL_TCP_NRANKS` /
//!   `PCOLL_TCP_PARENT` / `PCOLL_TCP_LABEL` in the environment. Workers
//!   split their mesh bind address (`PCOLL_TCP_BIND`, default loopback)
//!   from the address they advertise to peers (`PCOLL_TCP_ADVERTISE`),
//!   so a rank behind NAT or on a multi-NIC box can bind the wildcard
//!   interface yet hand out its routable name.
//! - **Rejoin.** The rendezvous listener and every rank's mesh listener
//!   stay alive for the whole run. A relaunched worker (env
//!   `PCOLL_TCP_REJOIN=1`, or automatic under [`TcpOpts::respawn`])
//!   re-registers with the parent, dials every live peer — whose accept
//!   threads splice a fresh connection into the dead rank's slot — and
//!   fetches the state it missed through the parent's blackboard
//!   ([`RendezvousClient`]); the app layer then runs the admission
//!   fence (`RankCtx::admit` in the `pcoll` crate) to bring it back
//!   into the collectives.
//!
//! A binary may contain several `launch_tcp` call sites; each is named by
//! [`TcpOpts::label`], and a worker process only serves the call site
//! whose label matches its environment — other call sites return `None`
//! so the caller can skip the work that belongs to a different launch
//! (see `examples/quickstart.rs`).

use crate::membership::Membership;
use crate::net::spawn_network;
use crate::pool::FRAME_POOL;
use crate::sim::{SimOpts, SimRoute};
use crate::stats::CommStats;
use crate::tag::{CollId, Message, Rank, WireTag};
use crate::world::{CommHandle, Communicator, Envelope, Inbox, WorldConfig};
use crate::{DType, NetworkModel};
use crossbeam::channel::{
    bounded, unbounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender, TrySendError,
};
use serde::json::Value;
use std::collections::{BTreeSet, HashMap};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Transport selection
// ---------------------------------------------------------------------------

/// Which backend a world runs on (see module docs).
#[derive(Debug, Clone)]
pub enum Transport {
    /// Ranks as threads in this process (the [`crate::World::launch`]
    /// semantics, unchanged).
    InProcess,
    /// One OS process per rank over loopback TCP.
    Tcp(TcpOpts),
    /// Single-process discrete-event simulation (see [`crate::sim`]).
    /// Under [`crate::World::launch_with`] the same SPMD closure runs
    /// thread-per-rank with the planet's region latencies composed into
    /// the delivery thread (co-simulation over wall time); the pure
    /// virtual-time path is [`crate::sim::SimWorld`], driven event by
    /// event from one thread.
    Sim(SimOpts),
}

impl Transport {
    /// Parse a `--transport` flag value (`inproc` / `tcp` / `sim`); the
    /// TCP variant gets `label` as its launch-site label.
    pub fn parse(s: &str, label: &str) -> Option<Transport> {
        match s {
            "inproc" | "in-process" | "thread" => Some(Transport::InProcess),
            "tcp" => Some(Transport::Tcp(TcpOpts::labeled(label))),
            "sim" => Some(Transport::Sim(SimOpts::default())),
            _ => None,
        }
    }
}

/// Options for a TCP (process-per-rank) launch.
#[derive(Debug, Clone)]
pub struct TcpOpts {
    /// Name of this launch call site. A worker process only serves the
    /// matching site; unrelated sites return `None` from [`launch_tcp`].
    pub label: String,
    /// Argv (minus program name) for the re-`exec`ed workers. Defaults to
    /// this process's own arguments, which is right whenever the worker
    /// reaches the launch call the same way the parent did. Test
    /// harnesses instead pass `[test_name, "--exact"]` so a worker runs
    /// exactly one test.
    pub child_args: Option<Vec<String>>,
    /// Inherit the parent's stdout in workers (default: silenced, so a
    /// bench's report lines are printed once, by the parent).
    pub inherit_stdout: bool,
    /// Watchdog for rendezvous and per-rank results: a worker that takes
    /// longer than this to connect or to report its result fails the
    /// launch (and all workers are killed). Overridable via the
    /// `PCOLL_TCP_TIMEOUT_SECS` environment variable.
    pub timeout: Duration,
    /// Parent rendezvous listen address (`"host:port"`). `None` — the
    /// default — binds an ephemeral loopback port and self-`exec`s one
    /// worker process per rank. `Some` switches to *externally launched*
    /// workers: the parent binds here, spawns nothing, and waits for
    /// `nranks` workers started by the operator with the `PCOLL_TCP_*`
    /// environment pointing back at this address. Settable via
    /// `PCOLL_TCP_LISTEN`.
    pub listen: Option<String>,
    /// Relaunch a worker whose process dies mid-run (once per rank),
    /// with `PCOLL_TCP_REJOIN=1` in its environment so it comes back
    /// asking for re-admission instead of an initial mesh slot. Only
    /// meaningful in self-`exec` mode (externally launched workers are
    /// the operator's to relaunch), and only useful with a closure that
    /// takes the rejoin path (see [`is_tcp_rejoiner`] and the `pcoll`
    /// crate's `RankCtx::admit`).
    pub respawn: bool,
}

impl TcpOpts {
    /// Default options for a launch site named `label`.
    pub fn labeled(label: impl Into<String>) -> Self {
        let timeout = std::env::var(ENV_TIMEOUT)
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map_or(Duration::from_secs(120), Duration::from_secs);
        TcpOpts {
            label: label.into(),
            child_args: None,
            inherit_stdout: false,
            timeout,
            listen: std::env::var(ENV_LISTEN).ok(),
            respawn: false,
        }
    }

    /// Builder: explicit worker argv.
    pub fn with_child_args(mut self, args: Vec<String>) -> Self {
        self.child_args = Some(args);
        self
    }

    /// Builder: externally launched workers — the parent binds `addr`
    /// and spawns nothing (see [`TcpOpts::listen`]).
    pub fn with_listen(mut self, addr: impl Into<String>) -> Self {
        self.listen = Some(addr.into());
        self
    }

    /// Builder: relaunch dead workers once for rejoin (see
    /// [`TcpOpts::respawn`]).
    pub fn with_respawn(mut self) -> Self {
        self.respawn = true;
        self
    }
}

const ENV_RANK: &str = "PCOLL_TCP_RANK";
const ENV_NRANKS: &str = "PCOLL_TCP_NRANKS";
const ENV_PARENT: &str = "PCOLL_TCP_PARENT";
const ENV_LABEL: &str = "PCOLL_TCP_LABEL";
const ENV_TIMEOUT: &str = "PCOLL_TCP_TIMEOUT_SECS";
const ENV_LISTEN: &str = "PCOLL_TCP_LISTEN";
const ENV_BIND: &str = "PCOLL_TCP_BIND";
const ENV_ADVERTISE: &str = "PCOLL_TCP_ADVERTISE";
const ENV_REJOIN: &str = "PCOLL_TCP_REJOIN";

/// True when this process is a re-`exec`ed TCP rank worker. Callers use
/// this to skip work that only the parent should do (e.g. the in-process
/// half of a both-backends comparison).
pub fn is_tcp_worker() -> bool {
    std::env::var_os(ENV_RANK).is_some()
}

/// True when this process is a relaunched worker that must *rejoin* a
/// running world: its previous incarnation was evicted, so instead of
/// taking an initial mesh slot it dials every live peer and the SPMD
/// closure must take the rejoin path — import the policy/membership
/// history from the blackboard ([`RendezvousClient`]) and enter the
/// admission fence rather than computing from round 0.
pub fn is_tcp_rejoiner() -> bool {
    std::env::var_os(ENV_REJOIN).is_some()
}

// ---------------------------------------------------------------------------
// Routing: where a sent envelope goes
// ---------------------------------------------------------------------------

/// Push into a bounded queue with full-queue accounting: the fast path is
/// one `try_send`; a full queue ticks the stall counters and blocks with
/// a deadline, and blowing the deadline panics — a queue that stays full
/// that long is a backpressure cycle (see the README's "data path"
/// section), which must fail loudly rather than hang the world.
/// Shortest blocked-send worth a [`pcoll_obs::EventKind::QueueStall`]
/// trace event (wall transports only). Genuine congestion blocks for
/// far longer; sub-threshold blocking is ordinary bounded-queue handoff.
const STALL_RECORD_MIN_NS: u64 = 10_000;

pub(crate) fn bounded_send<T>(
    tx: &Sender<T>,
    value: T,
    stats: &CommStats,
    deadline: Duration,
    what: &str,
) {
    stats.sends.fetch_add(1, Ordering::Relaxed);
    match tx.try_send(value) {
        Ok(()) => stats.record_depth(tx.len()),
        Err(TrySendError::Disconnected(_)) => {
            // Destination already finished: drop, like a packet to a
            // dead host.
            stats.dropped_closed.fetch_add(1, Ordering::Relaxed);
        }
        Err(TrySendError::Full(value)) => {
            stats.send_stalls.fetch_add(1, Ordering::Relaxed);
            let depth = tx.len();
            stats.record_depth(depth);
            let t0 = Instant::now();
            let res = tx.send_timeout(value, deadline);
            let blocked_ns = t0.elapsed().as_nanos() as u64;
            stats.stall_ns.fetch_add(blocked_ns, Ordering::Relaxed);
            // Only stalls long enough to matter become trace events: a
            // saturated producer/consumer handoff blocks for sub-µs on
            // *every* send, and recording each of those would flood the
            // ring and put a measurable ring-write on the hot path the
            // recorder promises to stay off. The counters above still
            // account every stall; the sim transport records its own
            // (virtual-time) stalls on a different path.
            if blocked_ns >= STALL_RECORD_MIN_NS {
                stats.recorder().record(pcoll_obs::LEVEL_SPANS, || {
                    pcoll_obs::EventKind::QueueStall {
                        depth: depth as u64,
                        dur_ns: blocked_ns,
                    }
                });
            }
            match res {
                Ok(()) => {}
                Err(SendTimeoutError::Disconnected(_)) => {
                    stats.dropped_closed.fetch_add(1, Ordering::Relaxed);
                }
                Err(SendTimeoutError::Timeout(_)) => panic!(
                    "send queue to {what} stayed full for {deadline:?} — \
                     the consumer is stuck or a backpressure cycle formed \
                     (raise WorldConfig::queue_capacity or fix the stall; \
                     see README 'data path')"
                ),
            }
        }
    }
}

/// Delivery fan-out shared by [`CommHandle`] and the network-model thread:
/// in-process mailbox table or the TCP peer writers. Cheap to clone.
#[derive(Clone)]
pub(crate) enum Route {
    Mailboxes(Arc<Vec<Sender<Envelope>>>),
    Tcp(Arc<TcpPeers>),
    /// Simulated transport: sends are staged for the event scheduler.
    Sim(SimRoute),
}

impl Route {
    pub(crate) fn mailboxes(txs: Vec<Sender<Envelope>>) -> Route {
        Route::Mailboxes(Arc::new(txs))
    }

    /// Hand `env` to `dst`, blocking (bounded, with `deadline`) when the
    /// destination queue is full. A closed destination (rank already
    /// finished) silently drops, like a packet to a dead host.
    pub(crate) fn deliver(&self, dst: Rank, env: Envelope, stats: &CommStats, deadline: Duration) {
        match self {
            Route::Mailboxes(mbs) => {
                bounded_send(&mbs[dst], env, stats, deadline, "rank mailbox");
            }
            Route::Tcp(peers) => peers.deliver(dst, env, stats, deadline),
            Route::Sim(sim) => sim.deliver(dst, env, stats),
        }
    }
}

/// Per-peer outbound queues plus the local inbox (self-sends short-circuit
/// the sockets; a rank is always FIFO with itself). Each slot is
/// lock-wrapped so a mid-run mesh reconnect — a rejoining rank dialing
/// back in — can splice a fresh writer in place of the dead one; the
/// steady-state cost is one uncontended lock plus a sender refcount bump
/// per remote send, and no allocation.
pub(crate) struct TcpPeers {
    rank: Rank,
    txs: Vec<Mutex<Option<Sender<PeerCmd>>>>,
    local: Sender<Envelope>,
    membership: Arc<Membership>,
}

impl TcpPeers {
    fn deliver(&self, dst: Rank, env: Envelope, stats: &CommStats, deadline: Duration) {
        if dst == self.rank {
            bounded_send(&self.local, env, stats, deadline, "local inbox");
        } else if self.membership.is_down(dst) {
            // A send to a declared-dead peer drops immediately instead of
            // queueing behind a writer that can only fail (or, worse,
            // blocking a full queue out to the deadline panic). This is
            // also what gates a rejoiner's spliced-in connection: it goes
            // unused until the admission fence readmits the rank.
            stats.dropped_peer_down.fetch_add(1, Ordering::Relaxed);
        } else if let Some(tx) = self.peer_tx(dst) {
            bounded_send(&tx, PeerCmd::Deliver(env), stats, deadline, "peer writer");
        }
    }

    /// Install a fresh writer queue for `peer` (mesh reconnect).
    fn swap_peer(&self, peer: Rank, tx: Sender<PeerCmd>) {
        *self.txs[peer].lock().expect("peer slot") = Some(tx);
    }

    /// The current writer queue for `peer`, if any.
    fn peer_tx(&self, peer: Rank) -> Option<Sender<PeerCmd>> {
        self.txs[peer].lock().expect("peer slot").clone()
    }
}

enum PeerCmd {
    Deliver(Envelope),
    /// Flush, send `GOODBYE`, half-close. Queued behind all prior
    /// deliveries on the same channel, so it cannot overtake them.
    Finish,
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

const FRAME_DATA: u8 = 0;
const FRAME_SHUTDOWN: u8 = 1;
const FRAME_GOODBYE: u8 = 2;
/// Keep-alive on an otherwise idle connection: consumed by the peer's
/// reader as a liveness observation, never delivered upward.
const FRAME_HEARTBEAT: u8 = 3;

/// How long a writer sits idle before sending a [`FRAME_HEARTBEAT`]. Long
/// enough that busy links never emit one (data traffic is its own
/// heartbeat); short enough that the phi-accrual detector keeps a fresh
/// inter-arrival estimate on quiet links.
const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(250);

/// Bound on how long teardown waits to enqueue one peer's goodbye when
/// that peer's writer queue is full. Healthy peers drain in microseconds;
/// anything slower than this is a stuck link that teardown skips (the
/// skip is counted in [`CommStats::drain_skips`]).
const GOODBYE_DRAIN_WAIT: Duration = Duration::from_secs(5);

/// Upper bound on one frame body; a frame claiming more is corrupt.
const MAX_FRAME: usize = 1 << 30;
/// Socket writes are split into chunks of this size (see module docs).
const WRITE_CHUNK: usize = 256 * 1024;

/// A decoded frame body.
#[derive(Debug)]
pub(crate) enum WireFrame {
    Data(Message),
    Shutdown,
    Goodbye,
    Heartbeat,
}

fn dtype_code(d: DType) -> u8 {
    match d {
        DType::F32 => 1,
        DType::F64 => 2,
        DType::I32 => 3,
        DType::I64 => 4,
    }
}

fn dtype_from_code(c: u8) -> Option<DType> {
    match c {
        1 => Some(DType::F32),
        2 => Some(DType::F64),
        3 => Some(DType::I32),
        4 => Some(DType::I64),
        _ => None,
    }
}

/// Encode a data message into `out` (header + raw LE elements). `out` is
/// cleared first; callers on the hot path reuse one scratch buffer across
/// messages so steady-state encoding allocates nothing.
pub(crate) fn encode_data_into(msg: &Message, out: &mut Vec<u8>) {
    out.clear();
    let payload_bytes = msg.payload.as_ref().map_or(0, |p| p.byte_len());
    out.reserve(32 + payload_bytes);
    out.push(FRAME_DATA);
    out.extend_from_slice(&(msg.src as u32).to_le_bytes());
    out.extend_from_slice(&msg.tag.coll.0.to_le_bytes());
    out.extend_from_slice(&msg.tag.round.to_le_bytes());
    out.extend_from_slice(&msg.tag.sem.to_le_bytes());
    match &msg.payload {
        None => out.push(0),
        Some(buf) => {
            out.push(dtype_code(buf.dtype()));
            out.extend_from_slice(&(buf.len() as u64).to_le_bytes());
            // Range-aware: a sub-range view encodes only its slice, and a
            // wire-borne payload being forwarded is a straight byte copy.
            buf.extend_wire_bytes(out);
        }
    }
}

/// Allocating convenience wrapper over [`encode_data_into`] (tests and
/// one-shot callers).
#[cfg(test)]
pub(crate) fn encode_data(msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    encode_data_into(msg, &mut out);
    out
}

/// Decode a frame body produced by [`encode_data`] (or the one-byte
/// control frames).
pub(crate) fn decode_frame(body: &[u8]) -> Result<WireFrame, String> {
    let mut cur = Cursor { body, pos: 0 };
    match cur.u8()? {
        FRAME_SHUTDOWN => Ok(WireFrame::Shutdown),
        FRAME_GOODBYE => Ok(WireFrame::Goodbye),
        FRAME_HEARTBEAT => Ok(WireFrame::Heartbeat),
        FRAME_DATA => {
            let src = cur.u32()? as Rank;
            let coll = CollId(cur.u32()?);
            let round = cur.u64()?;
            let sem = cur.u32()?;
            let payload = match cur.u8()? {
                0 => None,
                code => {
                    let dtype =
                        dtype_from_code(code).ok_or_else(|| format!("bad dtype code {code}"))?;
                    let nelems = cur.u64()? as usize;
                    let nbytes = nelems
                        .checked_mul(dtype.size_of())
                        .filter(|&n| n <= MAX_FRAME)
                        .ok_or("payload length overflow")?;
                    let raw = cur.bytes(nbytes)?;
                    // One allocation: the (pooled) frame body's payload
                    // range is copied out as raw bytes and *not* decoded —
                    // a reduction consumer folds it straight into its
                    // accumulator (`TypedBuf::combine_le_bytes`), so the
                    // hot path never materializes an intermediate buffer.
                    Some(
                        crate::Payload::from_wire(dtype, raw.to_vec())
                            .ok_or("ragged payload bytes")?,
                    )
                }
            };
            if cur.pos != body.len() {
                return Err(format!("{} trailing bytes in frame", body.len() - cur.pos));
            }
            Ok(WireFrame::Data(Message {
                src,
                tag: WireTag::new(coll, round, sem),
                payload,
            }))
        }
        k => Err(format!("unknown frame kind {k}")),
    }
}

struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.body.len())
            .ok_or("truncated frame")?;
        let s = &self.body[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }
}

/// Write one length-prefixed frame, chunking the body. Enforces the same
/// [`MAX_FRAME`] bound the reader does, so an oversized message fails
/// loudly at the sender instead of silently severing the receiver.
pub(crate) fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> std::io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte limit",
                body.len()
            ),
        ));
    }
    let len = body.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    for chunk in body.chunks(WRITE_CHUNK) {
        w.write_all(chunk)?;
    }
    Ok(())
}

/// Read one length-prefixed frame body into `body` (cleared and resized
/// in place, so a reused scratch buffer makes steady-state reads
/// allocation-free once it has grown to the largest frame seen).
/// `Ok(false)` on clean EOF at a frame boundary, `Ok(true)` when `body`
/// holds a frame.
pub(crate) fn read_frame_into<R: Read>(r: &mut R, body: &mut Vec<u8>) -> std::io::Result<bool> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof inside frame length",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame length exceeds limit",
        ));
    }
    body.clear();
    body.resize(len, 0);
    r.read_exact(body)?;
    Ok(true)
}

/// Allocating convenience wrapper over [`read_frame_into`] (rendezvous
/// JSON and tests). `Ok(None)` on clean EOF at a frame boundary.
pub(crate) fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut body = Vec::new();
    Ok(read_frame_into(r, &mut body)?.then_some(body))
}

// ---------------------------------------------------------------------------
// Per-peer socket threads
// ---------------------------------------------------------------------------

/// Route a local "peer is dead" verdict: mark membership (exactly once),
/// record the trace instant, and push an [`Envelope::PeerDown`] into the
/// local inbox so the engine stops waiting for the corpse. Safe to call
/// from both halves of a connection — only the first verdict propagates.
fn declare_peer_down(
    peer: Rank,
    membership: &Membership,
    inbox: &Sender<Envelope>,
    stats: &CommStats,
) {
    if membership.report_down(peer) {
        stats
            .recorder()
            .record(pcoll_obs::LEVEL_SPANS, || pcoll_obs::EventKind::PeerDown {
                peer: peer as u32,
            });
        // Best-effort: a closed inbox just means this rank is already in
        // teardown and nobody is left to care.
        let _ = inbox.send_timeout(Envelope::PeerDown { peer }, Duration::from_secs(5));
    }
}

fn writer_loop(
    stream: TcpStream,
    rx: Receiver<PeerCmd>,
    peer: Rank,
    membership: Arc<Membership>,
    inbox: Sender<Envelope>,
    stats: Arc<CommStats>,
) {
    let mut w = BufWriter::with_capacity(WRITE_CHUNK, stream);
    // One pooled scratch buffer per writer: every frame encodes into it,
    // so the steady state performs zero allocations per message.
    let mut scratch = FRAME_POOL.get();
    let write_env = |w: &mut BufWriter<TcpStream>, scratch: &mut Vec<u8>, env: Envelope| -> bool {
        let body: &[u8] = match env {
            Envelope::Data(msg) => {
                encode_data_into(&msg, scratch);
                scratch
            }
            Envelope::Shutdown => &[FRAME_SHUTDOWN],
            // Never crosses the wire: liveness verdicts are local.
            Envelope::PeerDown { .. } | Envelope::PeerUp { .. } => return true,
        };
        match write_frame(w, body) {
            Ok(()) => true,
            // A message the protocol can never carry (an oversized frame)
            // is reported and the connection declared dead — one broken
            // message must not abort an otherwise healthy rank.
            Err(e) if e.kind() == std::io::ErrorKind::InvalidInput => {
                eprintln!("pcoll-comm: unsendable message to rank {peer}, dropping link: {e}");
                false
            }
            // Transport errors mean the peer is gone.
            Err(_) => false,
        }
    };
    'outer: loop {
        let mut cmd = match rx.recv_timeout(HEARTBEAT_INTERVAL) {
            Ok(c) => c,
            Err(RecvTimeoutError::Timeout) => {
                // Idle link: keep the peer's failure detector fed. A
                // failed heartbeat is *not* a death verdict by itself —
                // an orderly-finished peer also stops reading; the reader
                // half (EOF without goodbye) is the authoritative signal.
                if write_frame(&mut w, &[FRAME_HEARTBEAT]).is_err() || w.flush().is_err() {
                    FRAME_POOL.put(scratch);
                    return;
                }
                stats.heartbeats.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break 'outer, // orderly finish
        };
        // Drain the queue before flushing so bursts coalesce into one
        // syscall batch, then flush when idle to bound latency.
        loop {
            match cmd {
                PeerCmd::Deliver(env) => {
                    if !write_env(&mut w, &mut scratch, env) {
                        declare_peer_down(peer, &membership, &inbox, &stats);
                        FRAME_POOL.put(scratch);
                        return; // peer gone: nothing left to do
                    }
                }
                PeerCmd::Finish => break 'outer,
            }
            match rx.try_recv() {
                Ok(next) => cmd = next,
                Err(_) => break,
            }
        }
        if w.flush().is_err() {
            declare_peer_down(peer, &membership, &inbox, &stats);
            FRAME_POOL.put(scratch);
            return;
        }
    }
    FRAME_POOL.put(scratch);
    // Shutdown handshake: everything queued before Finish has been
    // written; append GOODBYE, flush, and half-close so the peer's reader
    // sees an orderly end after draining our bytes.
    let _ = write_frame(&mut w, &[FRAME_GOODBYE]);
    let _ = w.flush();
    let _ = w.get_ref().shutdown(std::net::Shutdown::Write);
}

/// Reader half of one mesh connection. Delivery into the (bounded) local
/// inbox blocks when the application falls behind, which stops the read
/// loop, fills the kernel socket buffers, and stalls the sender's writer
/// — end-to-end backpressure over real sockets.
fn reader_loop(
    stream: TcpStream,
    peer: Rank,
    inbox: Sender<Envelope>,
    stats: Arc<CommStats>,
    membership: Arc<Membership>,
    deadline: Duration,
) {
    let mut r = BufReader::with_capacity(WRITE_CHUNK, stream);
    // One pooled scratch buffer per reader: every frame body lands in it,
    // so the steady state allocates only the decoded payload itself.
    let mut body = FRAME_POOL.get();
    // Did the peer end the connection with an orderly GOODBYE? Anything
    // else — EOF mid-stream, a reset, a corrupt frame — is a death.
    let mut orderly = false;
    loop {
        match read_frame_into(&mut r, &mut body) {
            Ok(true) => match decode_frame(&body) {
                Ok(WireFrame::Data(msg)) => {
                    // Every frame is a liveness observation for the
                    // failure detector (a couple of relaxed atomics).
                    membership.observe(peer);
                    // Receive accounting happens at *consumption* (the
                    // matcher / the engine's envelope intake), uniformly
                    // across transports — counting here too would tally
                    // TCP receives twice.
                    bounded_send(&inbox, Envelope::Data(msg), &stats, deadline, "local inbox");
                }
                Ok(WireFrame::Shutdown) => {
                    membership.observe(peer);
                    bounded_send(&inbox, Envelope::Shutdown, &stats, deadline, "local inbox");
                }
                Ok(WireFrame::Heartbeat) => {
                    // Keep-alive: feed the detector, deliver nothing.
                    membership.observe(peer);
                }
                Ok(WireFrame::Goodbye) => {
                    orderly = true;
                    break;
                }
                Err(e) => {
                    // Corrupt stream: unlike an orderly goodbye, say so —
                    // every later message from this pair is lost.
                    eprintln!("pcoll-comm: dropping corrupt connection: {e}");
                    break;
                }
            },
            // EOF without a goodbye: the peer *process* died (kill -9, a
            // crash) rather than finishing — a goodbye always precedes an
            // orderly close.
            Ok(false) => break,
            Err(e) => {
                eprintln!("pcoll-comm: mesh read error, dropping connection: {e}");
                break;
            }
        }
    }
    if !orderly {
        declare_peer_down(peer, &membership, &inbox, &stats);
    }
    FRAME_POOL.put(body);
}

// ---------------------------------------------------------------------------
// Rendezvous plumbing (length-prefixed JSON over the parent connection)
// ---------------------------------------------------------------------------

fn write_json(stream: &TcpStream, v: &Value) -> std::io::Result<()> {
    let mut s = stream;
    write_frame(&mut s, v.to_json().as_bytes())?;
    s.flush()
}

fn read_json(stream: &TcpStream) -> std::io::Result<Value> {
    let mut s = stream;
    let body = read_frame(&mut s)?.ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "peer closed rendezvous")
    })?;
    let text = std::str::from_utf8(&body)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 json"))?;
    Value::parse(text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn remaining(deadline: Instant) -> Duration {
    deadline
        .saturating_duration_since(Instant::now())
        .max(Duration::from_millis(1))
}

fn bad_frame(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned())
}

// ---------------------------------------------------------------------------
// Rendezvous blackboard (state transfer for rejoin)
// ---------------------------------------------------------------------------

/// Key-value side channel on a worker's rendezvous connection. The
/// parent keeps a blackboard that any worker can write
/// ([`RendezvousClient::put`]) and any worker — including one that
/// joined mid-run — can read ([`RendezvousClient::get`], blocking until
/// the key exists). The admission-fence protocol uses it to hand a
/// rejoining rank the policy/membership history it missed; the API is
/// deliberately JSON-text-in / JSON-text-out so app crates stay
/// decoupled from this crate's wire codec. Cloneable; clones share the
/// one underlying parent connection (an internal lock serializes use).
#[derive(Clone)]
pub struct RendezvousClient {
    link: Arc<Mutex<TcpStream>>,
}

impl RendezvousClient {
    /// Publish `json` (must parse as JSON) under `key` on the parent's
    /// blackboard, overwriting any previous value.
    pub fn put(&self, key: &str, json: &str) {
        let value = Value::parse(json).expect("RendezvousClient::put: invalid json");
        let stream = self.link.lock().expect("rendezvous link");
        write_json(
            &stream,
            &obj(vec![
                ("kind", Value::Str("put".into())),
                ("key", Value::Str(key.into())),
                ("value", value),
            ]),
        )
        .expect("rendezvous put");
    }

    /// Fetch `key` from the parent's blackboard as JSON text, blocking
    /// until some worker has `put` it (bounded by the launch watchdog —
    /// a key that never appears panics rather than deadlocking).
    pub fn get(&self, key: &str) -> String {
        let stream = self.link.lock().expect("rendezvous link");
        write_json(
            &stream,
            &obj(vec![
                ("kind", Value::Str("get".into())),
                ("key", Value::Str(key.into())),
            ]),
        )
        .expect("rendezvous get");
        let reply = read_json(&stream).expect("rendezvous get reply");
        match reply.field("found") {
            Ok(Value::Bool(true)) => reply.field("value").expect("get value").to_json(),
            _ => panic!("rendezvous get: key {key:?} never appeared before the watchdog"),
        }
    }
}

/// Parent-side shared rendezvous state: the worker address book, the
/// set of ranks whose connection died (and has not reconnected), and
/// the blackboard.
struct RendezvousState {
    addrs: Mutex<Vec<String>>,
    down: Mutex<BTreeSet<Rank>>,
    board: Mutex<HashMap<String, Value>>,
    board_cv: Condvar,
}

impl RendezvousState {
    fn new(addrs: Vec<String>) -> Self {
        RendezvousState {
            addrs: Mutex::new(addrs),
            down: Mutex::new(BTreeSet::new()),
            board: Mutex::new(HashMap::new()),
            board_cv: Condvar::new(),
        }
    }

    fn board_put(&self, key: String, value: Value) {
        self.board.lock().expect("board").insert(key, value);
        self.board_cv.notify_all();
    }

    /// Blocking lookup: waits up to `timeout` for the key to appear.
    fn board_get(&self, key: &str, timeout: Duration) -> Option<Value> {
        let deadline = Instant::now() + timeout;
        let mut board = self.board.lock().expect("board");
        loop {
            if let Some(v) = board.get(key) {
                return Some(v.clone());
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            let (b, _) = self.board_cv.wait_timeout(board, left).expect("board");
            board = b;
        }
    }

    fn mark_down(&self, rank: Rank) {
        self.down.lock().expect("down").insert(rank);
    }

    /// The address map + down set as one port-map JSON message.
    fn port_map(&self, nranks: usize, seed: u64) -> Value {
        let addrs = self.addrs.lock().expect("addrs");
        let down = self.down.lock().expect("down");
        obj(vec![
            ("nranks", Value::Int(nranks as i128)),
            ("seed", Value::Int(seed as i128)),
            (
                "addrs",
                Value::Arr(addrs.iter().map(|a| Value::Str(a.clone())).collect()),
            ),
            (
                "down",
                Value::Arr(down.iter().map(|&r| Value::Int(r as i128)).collect()),
            ),
        ])
    }
}

/// Serve one worker's rendezvous connection until its final report (or
/// its death): `put`/`get` frames hit the shared blackboard; the first
/// frame *without* a `kind` field is the worker's result. On a read
/// error the rank is recorded in [`RendezvousState::down`], so a later
/// rejoin hello learns which peers are gone.
fn serve_worker_conn(
    rank: Rank,
    s: TcpStream,
    state: Arc<RendezvousState>,
    tx: Sender<(Rank, std::io::Result<Value>)>,
    timeout: Duration,
) {
    let _ = s.set_read_timeout(Some(timeout));
    loop {
        match read_json(&s) {
            Ok(v) => match v.field("kind") {
                Ok(Value::Str(kind)) if kind == "put" => {
                    let (Ok(Value::Str(key)), Ok(value)) = (v.field("key"), v.field("value"))
                    else {
                        let _ = tx.send((rank, Err(bad_frame("malformed put"))));
                        return;
                    };
                    state.board_put(key.clone(), value.clone());
                }
                Ok(Value::Str(kind)) if kind == "get" => {
                    let Ok(Value::Str(key)) = v.field("key") else {
                        let _ = tx.send((rank, Err(bad_frame("malformed get"))));
                        return;
                    };
                    let reply = match state.board_get(key, timeout) {
                        Some(value) => obj(vec![("found", Value::Bool(true)), ("value", value)]),
                        None => obj(vec![("found", Value::Bool(false))]),
                    };
                    if write_json(&s, &reply).is_err() {
                        state.mark_down(rank);
                        let _ = tx.send((rank, Err(bad_frame("get reply failed"))));
                        return;
                    }
                }
                _ => {
                    let _ = tx.send((rank, Ok(v)));
                    return;
                }
            },
            Err(e) => {
                state.mark_down(rank);
                let _ = tx.send((rank, Err(e)));
                return;
            }
        }
    }
}

/// Mid-run rendezvous service: keeps accepting connections after the
/// initial world is up so an evicted-and-relaunched rank can come back.
/// Each late hello (which must carry `rejoin: true`) gets the current
/// address book + down set, then its connection is served like any
/// other worker's (blackboard traffic + final report).
fn rendezvous_service(
    listener: TcpListener,
    state: Arc<RendezvousState>,
    res_tx: Sender<(Rank, std::io::Result<Value>)>,
    stop: Arc<AtomicBool>,
    nranks: usize,
    seed: u64,
    timeout: Duration,
) {
    let _ = listener.set_nonblocking(true);
    let mut served = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((s, _)) => {
                let _ = s.set_nonblocking(false);
                let _ = s.set_nodelay(true);
                let _ = s.set_read_timeout(Some(timeout));
                let Ok(hello) = read_json(&s) else { continue };
                let Ok(rank) = hello.field("rank").and_then(Value::as_int) else {
                    continue;
                };
                let rank = rank as usize;
                if rank >= nranks || !matches!(hello.field("rejoin"), Ok(Value::Bool(true))) {
                    eprintln!("pcoll-comm: ignoring stray rendezvous connection (rank {rank})");
                    continue;
                }
                if let Ok(Value::Str(a)) = hello.field("addr") {
                    state.addrs.lock().expect("addrs")[rank] = a.clone();
                }
                state.down.lock().expect("down").remove(&rank);
                if write_json(&s, &state.port_map(nranks, seed)).is_err() {
                    continue;
                }
                let state2 = Arc::clone(&state);
                let tx = res_tx.clone();
                served.push(
                    std::thread::Builder::new()
                        .name(format!("pcoll-tcp-rejoin-{rank}"))
                        .spawn(move || serve_worker_conn(rank, s, state2, tx, timeout))
                        .expect("spawn rejoin server"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    for h in served {
        let _ = h.join();
    }
}

/// Dial a peer with exponential backoff plus jitter. Racing workers can
/// reach `connect` before the peer's listener backlog is ready, and a
/// refused connection during mesh construction deserves a few attempts
/// before it fails the rank. Jitter decorrelates the retry storms of
/// many workers dialing the same listener.
fn connect_with_retries(
    addr: &str,
    deadline: Instant,
    seed: u64,
    what: &str,
) -> std::io::Result<TcpStream> {
    let mut backoff = Duration::from_millis(10);
    let mut rng = seed | 1;
    let mut attempts = 0u32;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                attempts += 1;
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        e.kind(),
                        format!("{what}: gave up after {attempts} attempts: {e}"),
                    ));
                }
                // xorshift64* jitter in [0, backoff): full jitter keeps
                // simultaneous retriers from re-colliding in lockstep.
                rng ^= rng >> 12;
                rng ^= rng << 25;
                rng ^= rng >> 27;
                let r = rng.wrapping_mul(0x2545F4914F6CDD1D);
                let jitter = Duration::from_nanos(r % backoff.as_nanos().max(1) as u64);
                std::thread::sleep((backoff + jitter).min(remaining(deadline)));
                backoff = (backoff * 2).min(Duration::from_secs(1));
            }
        }
    }
}

/// Accept with a deadline (std has no native accept timeout). `poll` is
/// invoked on every idle iteration; returning an error aborts the wait —
/// the parent uses it to fail fast when a worker process dies instead of
/// blocking out the whole watchdog window.
fn accept_with_deadline(
    listener: &TcpListener,
    deadline: Instant,
    what: &str,
    poll: &mut dyn FnMut() -> std::io::Result<()>,
) -> std::io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(false)?;
                s.set_nodelay(true)?;
                return Ok(s);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                poll()?;
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!("timed out accepting {what}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// launch_tcp: parent and worker
// ---------------------------------------------------------------------------

/// Launch `cfg.nranks` rank *processes* over loopback TCP and run `f` on
/// each (see module docs for the full protocol).
///
/// Returns `Some(results)` in the parent; in a worker process serving a
/// *different* launch label it returns `None` immediately (skip the work
/// and fall through to the matching call site); in the worker serving
/// *this* label it never returns — the worker runs `f` for its rank,
/// reports the result to the parent, and exits.
pub fn launch_tcp<T, F>(cfg: WorldConfig, opts: TcpOpts, f: F) -> Option<Vec<T>>
where
    T: serde::Serialize + serde::Deserialize + Send + 'static,
    F: FnOnce(Communicator) -> T,
{
    assert!(cfg.nranks > 0, "world must have at least one rank");
    if is_tcp_worker() {
        let label = std::env::var(ENV_LABEL).unwrap_or_default();
        if label != opts.label {
            return None;
        }
        run_worker(cfg, &opts, f)
    } else {
        Some(run_parent::<T>(&cfg, &opts))
    }
}

/// Fault-tolerant variant of [`launch_tcp`]: the parent survives worker
/// deaths that the remaining ranks detected and reported as evictions.
///
/// Returns `Some((results, evicted))` in the parent, where `results[r]`
/// is `None` exactly for the ranks in `evicted` (sorted). A worker that
/// dies *without* any survivor declaring it down — or any worker that
/// panics — still fails the launch, so genuine bugs cannot hide behind
/// the tolerance.
pub fn launch_tcp_tolerant<T, F>(
    cfg: WorldConfig,
    opts: TcpOpts,
    f: F,
) -> Option<(Vec<Option<T>>, Vec<Rank>)>
where
    T: serde::Serialize + serde::Deserialize + Send + 'static,
    F: FnOnce(Communicator) -> T,
{
    assert!(cfg.nranks > 0, "world must have at least one rank");
    if is_tcp_worker() {
        let label = std::env::var(ENV_LABEL).unwrap_or_default();
        if label != opts.label {
            return None;
        }
        run_worker(cfg, &opts, f)
    } else {
        Some(run_parent_impl::<T>(&cfg, &opts, true))
    }
}

/// Kills (and reaps) still-running workers when the parent unwinds.
struct ChildGuard {
    children: Vec<(Rank, Child)>,
}

impl ChildGuard {
    fn kill_all(&mut self) {
        for (_, c) in &mut self.children {
            let _ = c.kill();
            let _ = c.wait();
        }
        self.children.clear();
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        self.kill_all();
    }
}

fn run_parent<T: serde::Deserialize>(cfg: &WorldConfig, opts: &TcpOpts) -> Vec<T> {
    let (results, _evicted) = run_parent_impl::<T>(cfg, opts, false);
    results
        .into_iter()
        .map(|r| r.expect("all ranks reported"))
        .collect()
}

/// Parent side of the rendezvous. With `tolerant == false` any worker
/// failure is fatal. With `tolerant == true` the watchdog distinguishes
/// "worker evicted" from "run failed": a worker that dies without a
/// report is forgiven *iff* at least one survivor's report lists it as
/// down, its non-zero exit status is tolerated, and it comes back as a
/// `None` slot plus an entry in the returned eviction list. Worker
/// *panics* (an explicit failure report) stay fatal in both modes.
fn run_parent_impl<T: serde::Deserialize>(
    cfg: &WorldConfig,
    opts: &TcpOpts,
    tolerant: bool,
) -> (Vec<Option<T>>, Vec<Rank>) {
    let nranks = cfg.nranks;
    // An explicit listen address switches the parent to *externally
    // launched* workers: bind where told (possibly a routable
    // interface), spawn nothing, and wait for the operator's workers.
    let external = opts.listen.is_some();
    let bind_addr = opts.listen.clone().unwrap_or_else(|| "127.0.0.1:0".into());
    let listener = TcpListener::bind(&bind_addr)
        .unwrap_or_else(|e| panic!("bind rendezvous listener on {bind_addr}: {e}"));
    let addr = listener.local_addr().expect("rendezvous addr");
    let exe = std::env::current_exe().expect("current_exe for self-exec");
    let args: Vec<String> = opts
        .child_args
        .clone()
        .unwrap_or_else(|| std::env::args().skip(1).collect());

    let mut guard = ChildGuard {
        children: Vec::new(),
    };
    if external {
        eprintln!(
            "pcoll-comm: rendezvous on {addr}: waiting for {nranks} externally \
             launched workers (label {:?})",
            opts.label
        );
    } else {
        for rank in 0..nranks {
            let child =
                spawn_worker_process(&exe, &args, rank, cfg, opts, &addr.to_string(), false);
            guard.children.push((rank, child));
        }
    }

    // Phase 1: collect hellos (worker rank + its advertised mesh
    // address). Any spawned worker's exit during rendezvous — even a
    // clean one — means it will never connect (bad argv, a `--exact`
    // filter matching no test, a panic before the launch call): fail
    // fast with the real cause instead of blocking out the whole
    // watchdog window. (In external mode there are no children to poll.)
    let deadline = Instant::now() + opts.timeout;
    let mut conns: Vec<Option<TcpStream>> = (0..nranks).map(|_| None).collect();
    let mut addrs: Vec<String> = vec![String::new(); nranks];
    for _ in 0..nranks {
        let mut check_children = || {
            for (rank, child) in &mut guard.children {
                if let Ok(Some(status)) = child.try_wait() {
                    return Err(std::io::Error::other(format!(
                        "tcp worker for rank {rank} exited during rendezvous ({status}) — \
                         it never reached the launch call (check the worker argv/label)"
                    )));
                }
            }
            Ok(())
        };
        let s = accept_with_deadline(
            &listener,
            deadline,
            "worker rendezvous",
            &mut check_children,
        )
        .expect("rendezvous accept");
        s.set_read_timeout(Some(remaining(deadline)))
            .expect("set rendezvous timeout");
        let hello = read_json(&s).expect("worker hello");
        let rank = hello
            .field("rank")
            .and_then(Value::as_int)
            .expect("hello.rank") as usize;
        let worker_addr = match hello.field("addr") {
            Ok(Value::Str(a)) => a.clone(),
            _ => panic!("hello missing mesh addr"),
        };
        assert!(rank < nranks && conns[rank].is_none(), "duplicate hello");
        addrs[rank] = worker_addr;
        conns[rank] = Some(s);
    }

    // Phase 2: broadcast the address map (and the world parameters the
    // workers must agree on — catches parent/worker config drift).
    let state = Arc::new(RendezvousState::new(addrs));
    let pm = state.port_map(nranks, cfg.seed);
    for s in conns.iter().flatten() {
        write_json(s, &pm).expect("send address map");
    }

    // Phase 3: serve every worker connection concurrently (results can
    // arrive in any order; a panic report must not hide behind a slower
    // rank's read; blackboard put/get frames ride the same streams),
    // and keep the rendezvous listener alive so an evicted-and-
    // relaunched rank can dial back in for rejoin.
    let (res_tx, res_rx) = unbounded();
    let mut readers = Vec::new();
    for (rank, conn) in conns.into_iter().enumerate() {
        let s = conn.expect("all conns collected");
        let tx = res_tx.clone();
        let state2 = Arc::clone(&state);
        let timeout = opts.timeout;
        readers.push(
            std::thread::Builder::new()
                .name(format!("pcoll-tcp-result-{rank}"))
                .spawn(move || serve_worker_conn(rank, s, state2, tx, timeout))
                .expect("spawn result reader"),
        );
    }
    let stop = Arc::new(AtomicBool::new(false));
    let service = {
        let state2 = Arc::clone(&state);
        let tx = res_tx.clone();
        let stop2 = Arc::clone(&stop);
        let (seed, timeout) = (cfg.seed, opts.timeout);
        std::thread::Builder::new()
            .name("pcoll-tcp-rendezvous".into())
            .spawn(move || rendezvous_service(listener, state2, tx, stop2, nranks, seed, timeout))
            .expect("spawn rendezvous service")
    };
    drop(res_tx);

    let mut results: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
    let mut missing: Vec<Rank> = Vec::new();
    let mut evicted: BTreeSet<Rank> = BTreeSet::new();
    // Ranks whose *connection* died at some point, even if a relaunched
    // incarnation later reported: their first process may have exited
    // with any status (kill -9 is a signal, not an exit code).
    let mut ever_down: BTreeSet<Rank> = BTreeSet::new();
    let mut respawned = vec![false; nranks];
    let mut done = 0usize;
    while done < nranks {
        let (rank, report) = res_rx
            .recv_timeout(opts.timeout + Duration::from_secs(5))
            .expect("result readers stalled");
        let report = match report {
            Ok(r) => r,
            Err(e) => {
                ever_down.insert(rank as Rank);
                if opts.respawn && !external && !respawned[rank] {
                    // Elastic mode: give the dead rank's slot a second
                    // process. It comes back through the rendezvous with
                    // `rejoin: true`, and must be re-admitted by the
                    // app's admission fence before it contributes; its
                    // eventual report (or second death) settles the slot.
                    eprintln!("pcoll-comm: tcp rank {rank} died ({e}); relaunching for rejoin");
                    respawned[rank] = true;
                    let child =
                        spawn_worker_process(&exe, &args, rank, cfg, opts, &addr.to_string(), true);
                    guard.children.push((rank, child));
                    continue;
                }
                if tolerant {
                    // Dead worker: its socket closed without a report.
                    // Whether that is an eviction or a run failure is
                    // decided below, once the survivors' reports are in.
                    eprintln!("pcoll-comm: tcp rank {rank}: no result from worker: {e}");
                    missing.push(rank as Rank);
                    done += 1;
                    continue;
                }
                panic!("tcp rank {rank}: no result from worker: {e}");
            }
        };
        if let Ok(Value::Arr(down)) = report.field("evicted") {
            for v in down {
                if let Ok(r) = v.as_int() {
                    evicted.insert(r as Rank);
                }
            }
        }
        let ok = matches!(report.field("ok"), Ok(Value::Bool(true)));
        if !ok {
            let msg = report
                .field("panic")
                .ok()
                .and_then(|v| match v {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| "worker failed without a message".into());
            panic!("tcp rank {rank} panicked: {msg}");
        }
        let value = report.field("value").expect("result value");
        if results[rank].is_none() {
            done += 1;
        }
        results[rank] = Some(
            T::from_value(value)
                .unwrap_or_else(|e| panic!("tcp rank {rank}: result deserialization failed: {e}")),
        );
    }
    for j in readers {
        let _ = j.join();
    }
    stop.store(true, Ordering::Release);
    let _ = service.join();
    // A silent death only counts as an eviction if a survivor noticed it;
    // a rank nobody declared down means the run itself is broken.
    for &rank in &missing {
        assert!(
            evicted.contains(&rank),
            "tcp rank {rank} died without a report and no survivor declared it down"
        );
    }

    // Phase 4: reap workers. Evicted workers — and the first incarnation
    // of a rank that was relaunched for rejoin — are allowed to die with
    // any status (kill -9 shows up as a signal, not an exit code).
    for (rank, child) in &mut guard.children {
        let status = child.wait().expect("wait tcp worker");
        assert!(
            status.success() || ever_down.contains(rank) || (tolerant && evicted.contains(rank)),
            "tcp worker for rank {rank} exited with {status}"
        );
    }
    guard.children.clear();

    (results, evicted.into_iter().collect())
}

/// Spawn one rank worker (the self-`exec` path). `rejoin` marks the
/// relaunch of a dead rank: the fresh process comes up knowing it must
/// ask the running world for re-admission instead of taking an initial
/// mesh slot.
fn spawn_worker_process(
    exe: &std::path::Path,
    args: &[String],
    rank: Rank,
    cfg: &WorldConfig,
    opts: &TcpOpts,
    parent_addr: &str,
    rejoin: bool,
) -> Child {
    let mut cmd = Command::new(exe);
    cmd.args(args)
        .env(ENV_RANK, rank.to_string())
        .env(ENV_NRANKS, cfg.nranks.to_string())
        .env(ENV_PARENT, parent_addr)
        .env(ENV_LABEL, &opts.label)
        // Trace settings cross the exec boundary as environment:
        // a programmatic `with_trace` reaches every worker.
        .env(pcoll_obs::ENV_TRACE, cfg.trace.level.to_string())
        .env(pcoll_obs::ENV_TRACE_CAP, cfg.trace.capacity.to_string())
        // Children must not re-enter parent (listen) mode or inherit a
        // stale rejoin marker from this process's own environment.
        .env_remove(ENV_LISTEN)
        .stdin(Stdio::null());
    if rejoin {
        cmd.env(ENV_REJOIN, "1");
    } else {
        cmd.env_remove(ENV_REJOIN);
    }
    if !opts.inherit_stdout {
        cmd.stdout(Stdio::null());
    }
    cmd.spawn()
        .unwrap_or_else(|e| panic!("spawn tcp rank worker {rank}: {e}"))
}

/// Spawn the writer/reader thread pair for one mesh connection; returns
/// the writer's command queue plus both join handles.
#[allow(clippy::too_many_arguments)]
fn spawn_peer_threads(
    stream: TcpStream,
    rank: Rank,
    peer: Rank,
    membership: &Arc<Membership>,
    inbox_tx: &Sender<Envelope>,
    stats: &Arc<CommStats>,
    queue_capacity: usize,
    queue_deadline: Duration,
) -> (
    Sender<PeerCmd>,
    std::thread::JoinHandle<()>,
    std::thread::JoinHandle<()>,
) {
    let read_half = stream.try_clone().expect("clone mesh stream");
    let (tx, rx) = bounded(queue_capacity);
    let writer_membership = Arc::clone(membership);
    let writer_inbox = inbox_tx.clone();
    let writer_stats = Arc::clone(stats);
    let w = std::thread::Builder::new()
        .name(format!("pcoll-tcpw-{rank}-{peer}"))
        .spawn(move || {
            writer_loop(
                stream,
                rx,
                peer,
                writer_membership,
                writer_inbox,
                writer_stats,
            )
        })
        .expect("spawn writer");
    let inbox = inbox_tx.clone();
    let reader_stats = Arc::clone(stats);
    let reader_membership = Arc::clone(membership);
    let r = std::thread::Builder::new()
        .name(format!("pcoll-tcpr-{rank}-{peer}"))
        .spawn(move || {
            reader_loop(
                read_half,
                peer,
                inbox,
                reader_stats,
                reader_membership,
                queue_deadline,
            )
        })
        .expect("spawn reader");
    (tx, w, r)
}

/// Mid-run mesh accept loop: the mesh listener outlives initial setup so
/// an evicted-and-relaunched rank can dial back in. Each accepted
/// connection identifies itself with the usual 4-byte rank id and gets a
/// fresh writer/reader pair spliced into its slot. The rank's `Down`
/// mark stays until the app-level admission fence calls
/// [`Membership::readmit`] — sends stay suppressed until the world has
/// actually agreed to take the rank back.
#[allow(clippy::too_many_arguments)]
fn mesh_accept_loop(
    listener: TcpListener,
    rank: Rank,
    nranks: usize,
    peers: Arc<TcpPeers>,
    membership: Arc<Membership>,
    inbox_tx: Sender<Envelope>,
    stats: Arc<CommStats>,
    queue_capacity: usize,
    queue_deadline: Duration,
    stop: Arc<AtomicBool>,
) {
    let _ = listener.set_nonblocking(true);
    let mut spliced = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((s, _)) => {
                let _ = s.set_nonblocking(false);
                let _ = s.set_nodelay(true);
                // Bound the id read so a wedged dialer cannot stall the
                // accept loop; a healthy rejoiner writes it immediately.
                let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
                let mut id = [0u8; 4];
                if (&s).read_exact(&mut id).is_err() {
                    continue;
                }
                let _ = s.set_read_timeout(None);
                let peer = u32::from_le_bytes(id) as usize;
                if peer >= nranks || peer == rank {
                    eprintln!("pcoll-comm: ignoring stray mesh connection (id {peer})");
                    continue;
                }
                let (tx, w, r) = spawn_peer_threads(
                    s,
                    rank,
                    peer,
                    &membership,
                    &inbox_tx,
                    &stats,
                    queue_capacity,
                    queue_deadline,
                );
                peers.swap_peer(peer, tx);
                spliced.push(w);
                spliced.push(r);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    for h in spliced {
        let _ = h.join();
    }
}

fn run_worker<T, F>(cfg: WorldConfig, opts: &TcpOpts, f: F) -> !
where
    T: serde::Serialize,
    F: FnOnce(Communicator) -> T,
{
    let rank: Rank = std::env::var(ENV_RANK)
        .expect("worker rank env")
        .parse()
        .expect("numeric rank");
    let env_nranks: usize = std::env::var(ENV_NRANKS)
        .expect("worker nranks env")
        .parse()
        .expect("numeric nranks");
    assert_eq!(
        env_nranks, cfg.nranks,
        "worker reconstructed a different world size than the parent \
         (launch arguments must be deterministic)"
    );
    let parent_addr = std::env::var(ENV_PARENT).expect("parent addr env");
    let rejoiner = is_tcp_rejoiner();
    let deadline = Instant::now() + opts.timeout;

    // Mesh listener first, so its address rides along in the hello.
    // `PCOLL_TCP_BIND` picks the interface (default: loopback, ephemeral
    // port); `PCOLL_TCP_ADVERTISE` overrides what the *peers* are told
    // to dial — the NAT / multi-NIC split: bind the wildcard interface,
    // advertise the routable name.
    let mesh_bind = std::env::var(ENV_BIND).unwrap_or_else(|_| "127.0.0.1:0".into());
    let mesh_listener = TcpListener::bind(&mesh_bind)
        .unwrap_or_else(|e| panic!("bind mesh listener on {mesh_bind}: {e}"));
    let mesh_port = mesh_listener.local_addr().expect("mesh addr").port();
    let advertise = match std::env::var(ENV_ADVERTISE) {
        // A full host:port with a real port is taken verbatim; a bare
        // host (or host:0) gets the actually-bound port appended.
        Ok(a)
            if a.rsplit_once(':')
                .is_some_and(|(_, p)| p.parse::<u16>().is_ok_and(|p| p != 0)) =>
        {
            a
        }
        Ok(host) => format!("{}:{mesh_port}", host.trim_end_matches(":0")),
        Err(_) => {
            // Derive from the bind address, falling back to loopback for
            // the wildcard interface.
            let host = match mesh_bind.rsplit_once(':') {
                Some((h, _)) if !h.is_empty() && h != "0.0.0.0" && h != "[::]" => h,
                _ => "127.0.0.1",
            };
            format!("{host}:{mesh_port}")
        }
    };

    // Rendezvous dial retries: an externally launched worker may
    // legitimately start before the parent's listener is up.
    let parent = connect_with_retries(
        &parent_addr,
        deadline,
        cfg.seed ^ 0xBEEF ^ rank as u64,
        "connect rendezvous",
    )
    .expect("connect rendezvous");
    parent.set_nodelay(true).expect("nodelay");
    write_json(
        &parent,
        &obj(vec![
            ("rank", Value::Int(rank as i128)),
            ("addr", Value::Str(advertise)),
            ("rejoin", Value::Bool(rejoiner)),
        ]),
    )
    .expect("send hello");
    parent
        .set_read_timeout(Some(remaining(deadline)))
        .expect("set rendezvous timeout");
    let pm = read_json(&parent).expect("address map");
    let pm_seed = pm.field("seed").and_then(Value::as_int).expect("pm.seed") as u64;
    assert_eq!(pm_seed, cfg.seed, "worker/parent seed drift");
    let addrs: Vec<String> = pm
        .field("addrs")
        .and_then(Value::as_arr)
        .expect("pm.addrs")
        .iter()
        .map(|v| match v {
            Value::Str(s) => s.clone(),
            other => panic!("non-string mesh addr {other:?}"),
        })
        .collect();
    assert_eq!(addrs.len(), cfg.nranks, "worker/parent world-size drift");
    let down: BTreeSet<Rank> = match pm.field("down") {
        Ok(Value::Arr(d)) => d
            .iter()
            .filter_map(|v| v.as_int().ok())
            .map(|r| r as Rank)
            .collect(),
        _ => BTreeSet::new(),
    };

    // Pairwise mesh. Initial launch: connect down, accept up; a 4-byte
    // rank id identifies each accepted stream. Rejoin: dial *every*
    // live peer — their mid-run accept threads splice us back in —
    // and accept nobody.
    let mut streams: Vec<Option<TcpStream>> = (0..cfg.nranks).map(|_| None).collect();
    if rejoiner {
        for (peer, peer_addr) in addrs.iter().enumerate() {
            if peer == rank || down.contains(&peer) {
                continue;
            }
            let retry_seed = cfg.seed ^ ((rank as u64) << 32) ^ peer as u64;
            let s = connect_with_retries(peer_addr, deadline, retry_seed, "redial mesh peer")
                .expect("redial mesh peer");
            s.set_nodelay(true).expect("nodelay");
            (&s).write_all(&(rank as u32).to_le_bytes())
                .expect("send mesh id");
            streams[peer] = Some(s);
        }
    } else {
        for (peer, peer_addr) in addrs.iter().enumerate().take(rank) {
            let retry_seed = cfg.seed ^ ((rank as u64) << 32) ^ peer as u64;
            let s = connect_with_retries(peer_addr, deadline, retry_seed, "connect mesh peer")
                .expect("connect mesh peer");
            s.set_nodelay(true).expect("nodelay");
            (&s).write_all(&(rank as u32).to_le_bytes())
                .expect("send mesh id");
            streams[peer] = Some(s);
        }
        for _ in rank + 1..cfg.nranks {
            let s = accept_with_deadline(&mesh_listener, deadline, "mesh peer", &mut || Ok(()))
                .expect("mesh accept");
            let mut id = [0u8; 4];
            (&s).read_exact(&mut id).expect("read mesh id");
            let peer = u32::from_le_bytes(id) as usize;
            assert!(
                peer > rank && peer < cfg.nranks && streams[peer].is_none(),
                "bad mesh id {peer}"
            );
            streams[peer] = Some(s);
        }
    }

    // Socket threads + routing. All queues are bounded: the writer
    // queues exert backpressure on senders, the inbox backpressures the
    // socket readers (and transitively the remote writers).
    //
    // The worker's flight recorder comes from the environment the parent
    // process passed down (`WorldConfig::trace` does not cross the exec
    // boundary). Each process has its own wall-clock epoch, so TCP trace
    // timestamps are comparable within a rank but not across ranks.
    let recorder =
        pcoll_obs::TraceConfig::from_env().recorder(rank as u32, pcoll_obs::Clock::wall());
    let stats = Arc::new(CommStats::with_recorder(recorder));
    let membership = Arc::new(Membership::with_grace(
        rank,
        cfg.nranks,
        pcoll_obs::Clock::wall(),
        cfg.suspicion_grace(),
    ));
    // A rejoiner starts life already knowing who is gone.
    for &d in &down {
        if d != rank {
            membership.report_down(d);
        }
    }
    let (inbox_tx, inbox_rx) = bounded(cfg.queue_capacity);
    let peers = Arc::new(TcpPeers {
        rank,
        txs: (0..cfg.nranks).map(|_| Mutex::new(None)).collect(),
        local: inbox_tx.clone(),
        membership: Arc::clone(&membership),
    });
    let mut writers = Vec::new();
    let mut readers = Vec::new();
    for (peer, slot) in streams.into_iter().enumerate() {
        let Some(stream) = slot else { continue };
        let (tx, w, r) = spawn_peer_threads(
            stream,
            rank,
            peer,
            &membership,
            &inbox_tx,
            &stats,
            cfg.queue_capacity,
            cfg.queue_deadline,
        );
        peers.swap_peer(peer, tx);
        writers.push(w);
        readers.push(r);
    }
    // The mesh listener stays alive for the whole run so a relaunched
    // rank can dial back in (see `mesh_accept_loop`).
    let accept_stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let peers2 = Arc::clone(&peers);
        let membership2 = Arc::clone(&membership);
        let inbox2 = inbox_tx.clone();
        let stats2 = Arc::clone(&stats);
        let stop2 = Arc::clone(&accept_stop);
        let (capacity, q_deadline, nranks) = (cfg.queue_capacity, cfg.queue_deadline, cfg.nranks);
        std::thread::Builder::new()
            .name(format!("pcoll-tcpa-{rank}"))
            .spawn(move || {
                mesh_accept_loop(
                    mesh_listener,
                    rank,
                    nranks,
                    peers2,
                    membership2,
                    inbox2,
                    stats2,
                    capacity,
                    q_deadline,
                    stop2,
                )
            })
            .expect("spawn mesh accept thread")
    };
    let route = Route::Tcp(Arc::clone(&peers));

    // The network model composes on top of the sockets: shape on the
    // sender side, then write. Per-rank jitter streams are decorrelated
    // by mixing the rank into the seed. The shaper shares this rank's
    // stats: a TCP rank's queue-pressure telemetry covers both its app
    // sends and its shaper deliveries.
    let (net, net_join) = match cfg.network {
        NetworkModel::Instant => (None, None),
        model => {
            let seed = cfg.seed ^ 0x5EED ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let (h, j) = spawn_network(
                model,
                route.clone(),
                seed,
                cfg.queue_capacity,
                cfg.queue_deadline,
                Arc::clone(&stats),
                None,
            );
            (Some(h), Some(j))
        }
    };

    // The rendezvous connection doubles as the blackboard link; the app
    // gets a cloneable client and the final report goes over the same
    // (lock-serialized) stream.
    let rendezvous = RendezvousClient {
        link: Arc::new(Mutex::new(parent)),
    };
    let comm = Communicator {
        handle: CommHandle {
            rank,
            size: cfg.nranks,
            seed: cfg.seed,
            net: net.clone(),
            route,
            stats: Arc::clone(&stats),
            queue_deadline: cfg.queue_deadline,
            membership: Arc::clone(&membership),
            fault: cfg.fault_hook.clone(),
        },
        inbox: Inbox { rx: inbox_rx },
        // One rank per process: the host barrier (thread-scaffolding, not
        // a modeled collective) degenerates to a no-op. Cross-rank
        // alignment over TCP must use the message-based `RankCtx::barrier`.
        host_barrier: Arc::new(Barrier::new(1)),
        rendezvous: Some(rendezvous.clone()),
    };

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || f(comm)));

    // Teardown: drain the delivery heap into the writers, flush + goodbye
    // every connection, then report. Reader joins come last — they return
    // when the peers goodbye in their own teardown.
    if let Some(net) = net {
        net.shutdown();
    }
    if let Some(j) = net_join {
        let _ = j.join();
    }
    for peer in 0..cfg.nranks {
        // `Finish` must queue behind all prior deliveries — but never
        // behind a corpse: draining toward a dead peer is skipped
        // outright, and a full queue gets a *bounded* wait (not the full
        // backpressure deadline) before the skip is recorded and teardown
        // moves on. A writer wedged past that is the parent watchdog's
        // problem, not a reason to hang every healthy goodbye. The
        // *current* slot contents matter: a peer that died and rejoined
        // drains through its spliced-in writer, not the dead original.
        if peer == rank {
            continue;
        }
        if membership.is_down(peer) {
            stats.drain_skips.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let Some(tx) = peers.peer_tx(peer) else {
            continue;
        };
        let wait = GOODBYE_DRAIN_WAIT.min(cfg.queue_deadline);
        if matches!(
            tx.send_timeout(PeerCmd::Finish, wait),
            Err(SendTimeoutError::Timeout(_))
        ) {
            stats.drain_skips.fetch_add(1, Ordering::Relaxed);
        }
    }
    accept_stop.store(true, Ordering::Release);
    for w in writers {
        let _ = w.join();
    }

    // Every report carries the ranks this worker locally declared dead,
    // so a tolerant parent can tell "worker evicted" from "run failed".
    let down_list = Value::Arr(
        membership
            .down()
            .into_iter()
            .map(|r| Value::Int(r as i128))
            .collect(),
    );
    let (report, code) = match &result {
        Ok(v) => (
            obj(vec![
                ("ok", Value::Bool(true)),
                ("value", v.to_value()),
                ("evicted", down_list),
            ]),
            0,
        ),
        Err(e) => {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "non-string panic payload".into());
            (
                obj(vec![
                    ("ok", Value::Bool(false)),
                    ("panic", Value::Str(msg)),
                    ("evicted", down_list),
                ]),
                101,
            )
        }
    };
    {
        let stream = rendezvous.link.lock().expect("rendezvous link");
        let _ = write_json(&stream, &report);
    }

    for r in readers {
        let _ = r.join();
    }
    // The accept thread joins any spliced-in connection threads before
    // returning (their peers goodbye in their own teardown, like the
    // original mesh readers above).
    let _ = accept_thread.join();
    drop(rendezvous);
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::{Payload, TypedBuf};

    fn data_msg(src: Rank, payload: Option<TypedBuf>) -> Message {
        Message {
            src,
            tag: WireTag::new(CollId(7), 3, 11),
            payload: payload.map(Payload::new),
        }
    }

    fn round_trip(msg: &Message) -> Message {
        let body = encode_data(msg);
        match decode_frame(&body).unwrap() {
            WireFrame::Data(m) => m,
            other => panic!("expected data frame, got {other:?}"),
        }
    }

    #[test]
    fn codec_round_trips_every_dtype() {
        for payload in [
            Some(TypedBuf::from(vec![1.5f32, -2.25, 0.0])),
            Some(TypedBuf::from(vec![std::f64::consts::E; 9])),
            Some(TypedBuf::from(vec![i32::MIN, i32::MAX])),
            Some(TypedBuf::from(vec![-1i64, 1 << 60])),
        ] {
            let msg = data_msg(5, payload.clone());
            let back = round_trip(&msg);
            assert_eq!(back.src, 5);
            assert_eq!(back.tag, msg.tag);
            assert_eq!(back.payload.map(Payload::into_buf), payload);
        }
    }

    #[test]
    fn codec_round_trips_control_and_empty_payloads() {
        let ctl = round_trip(&data_msg(0, None));
        assert!(ctl.payload.is_none());
        let empty = round_trip(&data_msg(1, Some(TypedBuf::zeros(DType::F64, 0))));
        assert_eq!(empty.payload.unwrap().len(), 0);
    }

    #[test]
    fn codec_round_trips_multi_mib_payload() {
        let n = (4 << 20) / 4; // 4 MiB of f32
        let big: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let msg = data_msg(2, Some(TypedBuf::from(big.clone())));
        let back = round_trip(&msg);
        assert_eq!(back.payload.unwrap().into_buf().as_f32().unwrap(), &big[..]);
    }

    #[test]
    fn control_frames_decode() {
        assert!(matches!(
            decode_frame(&[FRAME_SHUTDOWN]).unwrap(),
            WireFrame::Shutdown
        ));
        assert!(matches!(
            decode_frame(&[FRAME_GOODBYE]).unwrap(),
            WireFrame::Goodbye
        ));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_frame(&[]).is_err());
        assert!(decode_frame(&[99]).is_err());
        let mut body = encode_data(&data_msg(0, Some(TypedBuf::from(vec![1.0f32; 8]))));
        body.truncate(body.len() - 3); // ragged payload
        assert!(decode_frame(&body).is_err());
        body.push(0); // trailing byte after truncation boundary shift
        assert!(decode_frame(&body).is_err());
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let bodies: Vec<Vec<u8>> = vec![
            encode_data(&data_msg(1, Some(TypedBuf::from(vec![9i64; 4])))),
            vec![FRAME_SHUTDOWN],
            // Bigger than one write chunk, to exercise chunked writes.
            encode_data(&data_msg(
                3,
                Some(TypedBuf::from(vec![0.5f32; WRITE_CHUNK / 2])),
            )),
            vec![FRAME_GOODBYE],
        ];
        let mut wire = Vec::new();
        for b in &bodies {
            write_frame(&mut wire, b).unwrap();
        }
        let mut r = &wire[..];
        for b in &bodies {
            assert_eq!(read_frame(&mut r).unwrap().unwrap(), *b);
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    /// Full self-exec round trip: 3 rank processes pass a token around a
    /// ring over loopback. The worker re-runs exactly this test via
    /// `--exact` and exits inside `launch_tcp`.
    #[test]
    fn tcp_ring_pass_end_to_end() {
        let cfg = WorldConfig::instant(3).with_seed(5);
        let opts = TcpOpts::labeled("comm-ring").with_child_args(vec![
            "transport::tests::tcp_ring_pass_end_to_end".into(),
            "--exact".into(),
        ]);
        let out = launch_tcp(cfg, opts, |c| {
            let next = (c.rank() + 1) % c.size();
            c.send(
                next,
                WireTag::new(CollId(9), 0, 0),
                Some(TypedBuf::from(vec![c.rank() as i64])),
            );
            match c.inbox().recv() {
                Some(Envelope::Data(m)) => m.payload.unwrap().into_buf().as_i64().unwrap()[0],
                other => panic!("expected data, got {other:?}"),
            }
        });
        // Only the parent gets here (matching workers exit inside).
        assert_eq!(out.expect("parent results"), vec![2, 0, 1]);
    }

    /// A worker's panic must surface in the parent with its message.
    #[test]
    fn tcp_worker_panic_propagates() {
        let opts = TcpOpts::labeled("comm-panic").with_child_args(vec![
            "transport::tests::tcp_worker_panic_propagates".into(),
            "--exact".into(),
        ]);
        let result = std::panic::catch_unwind(|| {
            launch_tcp::<u32, _>(WorldConfig::instant(2), opts, |c| {
                if c.rank() == 1 {
                    panic!("boom from rank 1");
                }
                c.rank() as u32
            })
        });
        if is_tcp_worker() {
            // Rank 0's worker: its launch call returned through
            // catch_unwind only if it was the panicking rank (which
            // exits) — unreachable either way.
            unreachable!("workers exit inside launch_tcp");
        }
        let err = result.expect_err("parent must observe the worker panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("boom from rank 1"),
            "panic message lost: {msg}"
        );
    }

    #[test]
    fn transport_parse_recognizes_backends() {
        assert!(matches!(
            Transport::parse("inproc", "x"),
            Some(Transport::InProcess)
        ));
        match Transport::parse("tcp", "smoke") {
            Some(Transport::Tcp(opts)) => assert_eq!(opts.label, "smoke"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(Transport::parse("carrier-pigeon", "x").is_none());
    }
}
