//! `Transport::Sim`: a single-process discrete-event network simulator.
//!
//! The third transport. Where the in-process backend runs ranks as
//! threads and the TCP backend runs them as processes, the simulator runs
//! *no* rank concurrency at all: a [`SimWorld`] owns a virtual
//! [`Clock`], a priority-queue event schedule, and every
//! rank's mailbox, and a single driver thread replays the whole world
//! event by event. Sends issued through the unchanged [`CommHandle`] API
//! are staged by the transport's simulation route and scheduled for
//! delivery at
//!
//! ```text
//! now + planet.one_way(region(src), region(dst))   // geography
//!     + model.base_latency(wire_bytes)             // alpha-beta transfer
//!     + jitter                                     // deterministic PRNG
//! ```
//!
//! clamped to be no earlier than the previous message on the same
//! `(src, dst)` pair — the same MPI non-overtaking rule the wall-clock
//! delivery thread in [`crate::net`] enforces. Delivery pushes the
//! envelope into the destination's ordinary bounded mailbox channel, so
//! consumers drain a real [`Inbox`] exactly as they would on the other
//! two transports.
//!
//! Because the heap is ordered by `(due, seq)` with sequence numbers
//! assigned in (deterministic, single-threaded) staging order and all
//! randomness comes from a seeded xorshift, a simulation is a pure
//! function of `(config, seed)`: repeat runs are bit-identical. That is
//! what lets `P = 1024+` rank experiments with millions of messages run
//! on one box and regress byte-for-byte in CI.
//!
//! The region topology is a [`Planet`]: a named region set plus a
//! one-way-latency matrix (in the spirit of fantoch's `Planet`/`Region`
//! planet-scale simulator). Ranks map onto regions in contiguous blocks.

use crate::membership::Membership;
use crate::stats::CommStats;
use crate::tag::Rank;
use crate::time::{Clock, TimePoint};
use crate::transport::Route;
use crate::world::{CommHandle, Envelope, Inbox, WorldConfig};
use crate::NetworkModel;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Planet: regions and the one-way latency matrix
// ---------------------------------------------------------------------------

/// A region index into a [`Planet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region(pub usize);

/// A set of named regions with a one-way inter-region latency matrix.
#[derive(Debug, Clone)]
pub struct Planet {
    names: Vec<String>,
    /// Row-major `[from][to]` one-way latency in nanoseconds.
    latency_ns: Vec<u64>,
}

impl Planet {
    /// Build from names and a row-major one-way latency matrix.
    pub fn new(names: Vec<String>, one_way: Vec<Vec<Duration>>) -> Planet {
        let n = names.len();
        assert!(n > 0, "planet needs at least one region");
        assert_eq!(one_way.len(), n, "latency matrix must be {n}x{n}");
        let mut latency_ns = Vec::with_capacity(n * n);
        for row in &one_way {
            assert_eq!(row.len(), n, "latency matrix must be {n}x{n}");
            latency_ns.extend(row.iter().map(|d| d.as_nanos() as u64));
        }
        Planet { names, latency_ns }
    }

    /// One region, zero inter-rank geography (the latency model alone
    /// governs delivery) — the single-cluster default.
    pub fn single() -> Planet {
        Planet::new(vec!["local".into()], vec![vec![Duration::ZERO]])
    }

    /// `n` regions, `one_way` between any two distinct regions, zero
    /// within a region — the symmetric multi-cluster shape.
    pub fn uniform(n: usize, one_way: Duration) -> Planet {
        let names = (0..n).map(|i| format!("region-{i}")).collect();
        let m = (0..n)
            .map(|a| {
                (0..n)
                    .map(|b| if a == b { Duration::ZERO } else { one_way })
                    .collect()
            })
            .collect();
        Planet::new(names, m)
    }

    /// A four-region WAN with ms-scale one-way latencies (eu-west,
    /// us-east, us-west, ap-south) — the planet-scale demo topology.
    pub fn wan() -> Planet {
        let ms = Duration::from_micros;
        let intra = ms(250);
        let names = vec![
            "eu-west".into(),
            "us-east".into(),
            "us-west".into(),
            "ap-south".into(),
        ];
        let m = vec![
            vec![intra, ms(40_000), ms(70_000), ms(60_000)],
            vec![ms(40_000), intra, ms(35_000), ms(90_000)],
            vec![ms(70_000), ms(35_000), intra, ms(110_000)],
            vec![ms(60_000), ms(90_000), ms(110_000), intra],
        ];
        Planet::new(names, m)
    }

    /// Number of regions.
    pub fn nregions(&self) -> usize {
        self.names.len()
    }

    /// A region's name.
    pub fn region_name(&self, r: Region) -> &str {
        &self.names[r.0]
    }

    /// One-way latency from `a` to `b`.
    pub fn one_way(&self, a: Region, b: Region) -> Duration {
        Duration::from_nanos(self.latency_ns[a.0 * self.names.len() + b.0])
    }

    /// The region hosting `rank` of `p`: contiguous blocks of ranks, so
    /// rank locality mirrors how clusters are actually carved up.
    pub fn rank_region(&self, rank: Rank, p: usize) -> Region {
        Region(rank * self.nregions() / p.max(1))
    }
}

/// Options for the simulated transport.
#[derive(Debug, Clone)]
pub struct SimOpts {
    /// Region topology composed with the world's [`NetworkModel`].
    pub planet: Planet,
    /// Chaos script applied natively in event delivery (empty = none).
    pub faults: FaultPlan,
}

impl Default for SimOpts {
    fn default() -> Self {
        SimOpts {
            planet: Planet::single(),
            faults: FaultPlan::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// One scripted fault in a simulated run. All instants are virtual time;
/// windows are half-open `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// `rank` dies at `at`: everything it had in flight still lands, but
    /// from `at` on it neither sends nor receives, and every live rank
    /// gets an [`Envelope::PeerDown`] at that instant (the sim's
    /// omniscient stand-in for per-link detection).
    Kill {
        /// The rank that dies.
        rank: Rank,
        /// When it dies.
        at: TimePoint,
    },
    /// `rank` freezes for `[from, from + dur)`: messages it sends or
    /// should receive during the window are deferred to the window's end
    /// (it comes back — a GC pause or `SIGSTOP`, not a death).
    Stall {
        /// The stalled rank.
        rank: Rank,
        /// Freeze start.
        from: TimePoint,
        /// Freeze length.
        dur: Duration,
    },
    /// Messages sent `src → dst` during the window vanish.
    Drop {
        /// Sender side of the lossy link.
        src: Rank,
        /// Receiver side.
        dst: Rank,
        /// Window start.
        from: TimePoint,
        /// Window end (exclusive).
        until: TimePoint,
    },
    /// Messages sent `src → dst` during the window take `extra` longer.
    Delay {
        /// Sender side of the slow link.
        src: Rank,
        /// Receiver side.
        dst: Rank,
        /// Added one-way latency.
        extra: Duration,
        /// Window start.
        from: TimePoint,
        /// Window end (exclusive).
        until: TimePoint,
    },
    /// The `src → dst` direction is cut permanently at `at` (the reverse
    /// direction still works — an asymmetric partition).
    Sever {
        /// Sender side of the cut direction.
        src: Rank,
        /// Receiver side.
        dst: Rank,
        /// When the cut happens.
        at: TimePoint,
    },
    /// A previously killed `rank` comes back at `at`: its dead flag
    /// clears, every live rank's membership view re-admits it, and the
    /// driver is handed a [`SimEvent::Rejoin`] so it can run the
    /// admission-fence protocol (state import, fence agreement, schedule
    /// rebuild) at that exact virtual instant. Paired with
    /// [`Fault::Kill`], this makes a full kill → evict → rejoin cycle a
    /// pure function of `(config, seed)` — it replays bit-identically.
    Rejoin {
        /// The rank that comes back.
        rank: Rank,
        /// When it rejoins (must be after its kill to have any effect).
        at: TimePoint,
    },
}

/// A scripted set of [`Fault`]s for one simulated run. Because the sim is
/// a pure function of `(config, seed)`, the same plan replays
/// bit-identically — chaos runs regress in CI like any other.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults, in no particular order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Append a fault (builder-style).
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

// ---------------------------------------------------------------------------
// The event schedule
// ---------------------------------------------------------------------------

enum EventKind {
    Deliver {
        src: Rank,
        dst: Rank,
        env: Envelope,
        /// Total modeled delay this message spent "on the wire" (for the
        /// destination's `NetRelease` trace event).
        delay_ns: u64,
        /// Of `delay_ns`, the part imposed by the non-overtaking clamp —
        /// recorded at delivery as a `QueueStall` span on the sender.
        held_ns: u64,
        /// Messages ahead on the same wire when this one was staged.
        held_behind: u64,
    },
    Timer {
        rank: Rank,
        token: u64,
    },
    /// A scripted [`Fault::Kill`] coming due (internal — never surfaced).
    Kill {
        rank: Rank,
    },
    /// A scripted [`Fault::Rejoin`] coming due (surfaced as
    /// [`SimEvent::Rejoin`] so the driver can run admission).
    Rejoin {
        rank: Rank,
    },
}

struct SimEntry {
    due: TimePoint,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for SimEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for SimEntry {}
impl PartialOrd for SimEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SimEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// What [`SimWorld::step`] just made happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// An envelope was pushed into `dst`'s mailbox; the driver should
    /// drain that rank's [`Inbox`] now.
    Deliver {
        /// Destination rank.
        dst: Rank,
    },
    /// A timer scheduled with [`SimWorld::schedule_timer`] fired.
    Timer {
        /// The rank the timer belongs to.
        rank: Rank,
        /// The caller's opaque token.
        token: u64,
    },
    /// A scripted [`Fault::Rejoin`] came due: `rank`'s dead flag is
    /// cleared and every live membership view has re-admitted it. The
    /// driver must now run the admission-fence protocol before the
    /// joiner participates in any round.
    Rejoin {
        /// The rank that just came back.
        rank: Rank,
    },
}

/// Sends staged by [`Route::Sim`] during event handling, flushed into the
/// schedule by the driver. Shared between every rank's `CommHandle` and
/// the world.
#[derive(Clone, Default)]
pub(crate) struct SimStage {
    pub(crate) queue: Arc<Mutex<Vec<(Rank, Rank, Envelope)>>>,
}

/// Per-rank sending side of the staged route.
#[derive(Clone)]
pub(crate) struct SimRoute {
    pub(crate) src: Rank,
    pub(crate) stage: SimStage,
}

impl SimRoute {
    pub(crate) fn deliver(&self, dst: Rank, env: Envelope, stats: &CommStats) {
        stats.sends.fetch_add(1, Ordering::Relaxed);
        let mut q = self.stage.queue.lock().expect("sim stage lock");
        q.push((self.src, dst, env));
        stats.record_depth(q.len());
    }
}

// ---------------------------------------------------------------------------
// SimWorld
// ---------------------------------------------------------------------------

/// The simulated world: virtual clock, event heap, mailboxes, and the
/// latency composition (see module docs). Drive it with
/// [`SimWorld::step`] in a loop; after each event, drain the affected
/// rank's inbox and let it react (its sends are staged and picked up by
/// the next `step`).
pub struct SimWorld {
    cfg: WorldConfig,
    planet: Planet,
    regions: Vec<Region>,
    clock: Clock,
    heap: BinaryHeap<Reverse<SimEntry>>,
    seq: u64,
    stage: SimStage,
    last_due: HashMap<(Rank, Rank), TimePoint>,
    /// Undelivered messages per (src, dst) pair — the "wire queue" depth
    /// a clamped send was stuck behind (see [`SimWorld::flush_sends`]).
    in_flight: HashMap<(Rank, Rank), u64>,
    rng_state: u64,
    mb_txs: Vec<Sender<Envelope>>,
    mb_rxs: Vec<Option<Receiver<Envelope>>>,
    stats: Vec<Arc<CommStats>>,
    memberships: Vec<Arc<Membership>>,
    faults: Vec<Fault>,
    dead: Vec<bool>,
    events: u64,
    delivered: u64,
    dropped_by_fault: u64,
}

impl SimWorld {
    /// Build a simulated world for `cfg.nranks` ranks over `opts.planet`.
    pub fn new(cfg: WorldConfig, opts: SimOpts) -> SimWorld {
        assert!(cfg.nranks > 0, "world must have at least one rank");
        let (mb_txs, mb_rxs): (Vec<_>, Vec<_>) =
            (0..cfg.nranks).map(|_| bounded(cfg.queue_capacity)).unzip();
        let regions = (0..cfg.nranks)
            .map(|r| opts.planet.rank_region(r, cfg.nranks))
            .collect();
        // Every rank's flight recorder timestamps on the *virtual* clock,
        // so same-seed runs emit byte-identical traces (a tested
        // invariant — see `tests/sim_determinism.rs`).
        let clock = Clock::virtual_clock();
        let stats: Vec<Arc<CommStats>> = (0..cfg.nranks)
            .map(|rank| {
                let rec = cfg.trace.recorder(rank as u32, clock.clone());
                Arc::new(CommStats::with_recorder(rec))
            })
            .collect();
        let memberships = (0..cfg.nranks)
            .map(|rank| {
                Arc::new(Membership::with_grace(
                    rank,
                    cfg.nranks,
                    clock.clone(),
                    cfg.suspicion_grace(),
                ))
            })
            .collect();
        let mut w = SimWorld {
            rng_state: (cfg.seed ^ 0x5EED) | 1,
            planet: opts.planet,
            regions,
            clock,
            heap: BinaryHeap::new(),
            seq: 0,
            stage: SimStage::default(),
            last_due: HashMap::new(),
            in_flight: HashMap::new(),
            mb_txs,
            mb_rxs: mb_rxs.into_iter().map(Some).collect(),
            stats,
            memberships,
            faults: opts.faults.faults,
            dead: vec![false; cfg.nranks],
            events: 0,
            delivered: 0,
            dropped_by_fault: 0,
            cfg,
        };
        // Scripted kills and rejoins become schedule entries so they
        // interleave with deliveries in deterministic (due, seq) order.
        let membership_events: Vec<(TimePoint, EventKind)> = w
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::Kill { rank, at } => Some((*at, EventKind::Kill { rank: *rank })),
                Fault::Rejoin { rank, at } => Some((*at, EventKind::Rejoin { rank: *rank })),
                _ => None,
            })
            .collect();
        for (at, kind) in membership_events {
            w.heap.push(Reverse(SimEntry {
                due: at,
                seq: w.seq,
                kind,
            }));
            w.seq += 1;
        }
        w
    }

    /// World size (P).
    pub fn nranks(&self) -> usize {
        self.cfg.nranks
    }

    /// The world's virtual clock (share it with the engine so latency
    /// telemetry reads simulated time).
    pub fn clock(&self) -> Clock {
        self.clock.clone()
    }

    /// Current virtual time.
    pub fn now(&self) -> TimePoint {
        self.clock.now()
    }

    /// The region hosting `rank`.
    pub fn region(&self, rank: Rank) -> Region {
        self.regions[rank]
    }

    /// The planet this world runs on.
    pub fn planet(&self) -> &Planet {
        &self.planet
    }

    /// A sending handle for `rank` — the unchanged [`CommHandle`] API;
    /// sends are staged for the event schedule instead of delivered.
    pub fn comm(&self, rank: Rank) -> CommHandle {
        assert!(rank < self.cfg.nranks, "rank {rank} out of range");
        CommHandle {
            rank,
            size: self.cfg.nranks,
            seed: self.cfg.seed,
            net: None,
            route: Route::Sim(SimRoute {
                src: rank,
                stage: self.stage.clone(),
            }),
            stats: Arc::clone(&self.stats[rank]),
            queue_deadline: self.cfg.queue_deadline,
            membership: Arc::clone(&self.memberships[rank]),
            fault: self.cfg.fault_hook.clone(),
        }
    }

    /// `rank`'s per-peer liveness view (shared with its [`CommHandle`]s).
    pub fn membership(&self, rank: Rank) -> Arc<Membership> {
        Arc::clone(&self.memberships[rank])
    }

    /// Whether `rank` is dead (scripted kill or [`SimWorld::kill`]).
    pub fn is_dead(&self, rank: Rank) -> bool {
        self.dead[rank]
    }

    /// The live ranks, sorted.
    pub fn live_ranks(&self) -> Vec<Rank> {
        (0..self.cfg.nranks).filter(|&r| !self.dead[r]).collect()
    }

    /// Kill `rank` *now*: from this instant it neither sends nor
    /// receives, and every live rank gets an [`Envelope::PeerDown`]
    /// delivery at the current virtual time (drained through the normal
    /// mailbox path, so harnesses see the death in deterministic event
    /// order). Messages the victim already had in flight still land —
    /// exactly the TCP semantics, where buffered bytes survive the
    /// sender's death. Idempotent.
    pub fn kill(&mut self, rank: Rank) {
        assert!(rank < self.cfg.nranks, "rank {rank} out of range");
        if self.dead[rank] {
            return;
        }
        self.dead[rank] = true;
        let now = self.clock.now();
        for dst in 0..self.cfg.nranks {
            if dst == rank || self.dead[dst] {
                continue;
            }
            self.heap.push(Reverse(SimEntry {
                due: now,
                seq: self.seq,
                kind: EventKind::Deliver {
                    src: rank,
                    dst,
                    env: Envelope::PeerDown { peer: rank },
                    delay_ns: 0,
                    held_ns: 0,
                    held_behind: 0,
                },
            }));
            self.seq += 1;
        }
    }

    /// Bring a killed `rank` back *now*: clears its dead flag, re-admits
    /// it in every live rank's membership view, and resets the joiner's
    /// own view to the current world (live peers alive with fresh timing
    /// state, dead peers down) — the simulator's stand-in for a freshly
    /// relaunched process that learned the membership from the admission
    /// state transfer. The *collective* side of admission (fence
    /// agreement, schedule rebuild) is the driver's job, triggered by the
    /// [`SimEvent::Rejoin`] this surfaces through [`SimWorld::step`] when
    /// scripted. Idempotent: rejoining a live rank is a no-op.
    pub fn rejoin(&mut self, rank: Rank) {
        assert!(rank < self.cfg.nranks, "rank {rank} out of range");
        if !self.dead[rank] {
            return;
        }
        self.dead[rank] = false;
        let now = self.clock.now();
        for r in 0..self.cfg.nranks {
            if r == rank || self.dead[r] {
                continue;
            }
            self.memberships[r].readmit(rank);
            // Mirror [`SimWorld::kill`]'s PeerDown fan-out: every
            // survivor's engine must drop its null-synthesis verdict for
            // the joiner before rounds past the admission fence are
            // built, or the joiner's contributions stay nulled forever.
            // Pushed after the Rejoin event that surfaced this call, so
            // drivers run the admission protocol first, then the engines
            // learn of the comeback — still before any post-fence
            // deposit timer can fire.
            self.heap.push(Reverse(SimEntry {
                due: now,
                seq: self.seq,
                kind: EventKind::Deliver {
                    src: rank,
                    dst: r,
                    env: Envelope::PeerUp { peer: rank },
                    delay_ns: 0,
                    held_ns: 0,
                    held_behind: 0,
                },
            }));
            self.seq += 1;
        }
        for q in 0..self.cfg.nranks {
            if self.dead[q] {
                self.memberships[rank].report_down(q);
            } else {
                self.memberships[rank].readmit(q);
            }
        }
    }

    /// Take `rank`'s receive half (once).
    pub fn take_inbox(&mut self, rank: Rank) -> Inbox {
        Inbox {
            rx: self.mb_rxs[rank]
                .take()
                .expect("inbox already taken for this rank"),
        }
    }

    /// `rank`'s queue-pressure counters.
    pub fn comm_stats(&self, rank: Rank) -> Arc<CommStats> {
        Arc::clone(&self.stats[rank])
    }

    /// Schedule an application event (an arrival, a deadline) at `at`;
    /// `token` is returned verbatim in [`SimEvent::Timer`].
    pub fn schedule_timer(&mut self, at: TimePoint, rank: Rank, token: u64) {
        let due = at.max(self.clock.now());
        self.heap.push(Reverse(SimEntry {
            due,
            seq: self.seq,
            kind: EventKind::Timer { rank, token },
        }));
        self.seq += 1;
    }

    /// xorshift64* — the same deterministic jitter PRNG the wall-clock
    /// delivery thread uses.
    fn next_jitter(&mut self, max: Duration) -> Duration {
        self.rng_state ^= self.rng_state >> 12;
        self.rng_state ^= self.rng_state << 25;
        self.rng_state ^= self.rng_state >> 27;
        let r = self.rng_state.wrapping_mul(0x2545F4914F6CDD1D);
        let nanos = max.as_nanos() as u64;
        if nanos == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(r % nanos)
        }
    }

    fn jitter_max(model: &NetworkModel) -> Duration {
        match model {
            NetworkModel::Instant => Duration::ZERO,
            NetworkModel::AlphaBeta { jitter, .. } => *jitter,
        }
    }

    /// Move staged sends into the event heap with composed latencies and
    /// the per-pair non-overtaking clamp.
    ///
    /// When the clamp fires — the message would have arrived at its
    /// modeled time but an earlier message on the same `(src, dst)` wire
    /// is still in flight — the held interval is recorded as a
    /// [`pcoll_obs::EventKind::QueueStall`] on the *sender*: it is the
    /// virtual-time analogue of a bounded send queue exerting
    /// backpressure (the message sat serialized behind its predecessors),
    /// with `depth` = messages ahead of it on that wire.
    fn flush_sends(&mut self) {
        let staged: Vec<(Rank, Rank, Envelope)> = {
            let mut q = self.stage.queue.lock().expect("sim stage lock");
            std::mem::take(&mut *q)
        };
        let now = self.clock.now();
        for (src, dst, env) in staged {
            // Dead ends: a corpse neither sends nor receives. (Messages
            // already *in the heap* when a rank dies are handled at pop.)
            if self.dead[src] || self.dead[dst] {
                self.dropped_by_fault += 1;
                continue;
            }
            let bytes = match &env {
                Envelope::Data(m) => m.wire_bytes(),
                Envelope::Shutdown | Envelope::PeerDown { .. } | Envelope::PeerUp { .. } => 0,
            };
            let mut latency = self.planet.one_way(self.regions[src], self.regions[dst])
                + self.cfg.network.base_latency(bytes)
                + self.next_jitter(Self::jitter_max(&self.cfg.network));
            // Scripted link faults, judged at send time.
            let mut stall_until = TimePoint::ZERO;
            let mut dropped = false;
            for f in &self.faults {
                match *f {
                    Fault::Drop {
                        src: fs,
                        dst: fd,
                        from,
                        until,
                    } if fs == src && fd == dst && now >= from && now < until => {
                        dropped = true;
                    }
                    Fault::Delay {
                        src: fs,
                        dst: fd,
                        extra,
                        from,
                        until,
                    } if fs == src && fd == dst && now >= from && now < until => {
                        latency += extra;
                    }
                    Fault::Sever {
                        src: fs,
                        dst: fd,
                        at,
                    } if fs == src && fd == dst && now >= at => {
                        dropped = true;
                    }
                    Fault::Stall { rank, from, dur } if rank == src || rank == dst => {
                        // A frozen endpoint defers traffic to the thaw.
                        let end = from + dur;
                        if now >= from && now < end {
                            stall_until = stall_until.max(end);
                        }
                    }
                    _ => {}
                }
            }
            if dropped {
                self.dropped_by_fault += 1;
                continue;
            }
            let natural = (now + latency).max(stall_until);
            let mut due = natural;
            if let Some(prev) = self.last_due.get(&(src, dst)) {
                due = due.max(*prev);
            }
            let held_ns = due.duration_since(natural).as_nanos() as u64;
            let held_behind = self.in_flight.get(&(src, dst)).copied().unwrap_or(0);
            self.last_due.insert((src, dst), due);
            *self.in_flight.entry((src, dst)).or_insert(0) += 1;
            self.heap.push(Reverse(SimEntry {
                due,
                seq: self.seq,
                kind: EventKind::Deliver {
                    src,
                    dst,
                    env,
                    delay_ns: due.duration_since(now).as_nanos() as u64,
                    held_ns,
                    held_behind,
                },
            }));
            self.seq += 1;
        }
    }

    /// Advance the world by one event: flush staged sends, pop the
    /// earliest entry, move the clock to its due time, and either push a
    /// delivery into the destination mailbox or surface a timer. `None`
    /// when the schedule is empty (and nothing was staged).
    pub fn step(&mut self) -> Option<SimEvent> {
        loop {
            self.flush_sends();
            let Reverse(entry) = self.heap.pop()?;
            self.clock.advance_to(entry.due);
            self.events += 1;
            match entry.kind {
                EventKind::Kill { rank } => {
                    // Scripted death coming due: mark and fan the
                    // PeerDown notifications out, then keep stepping —
                    // the notifications themselves surface as ordinary
                    // deliveries.
                    self.kill(rank);
                    continue;
                }
                EventKind::Rejoin { rank } => {
                    // Scripted comeback: only meaningful for a rank that
                    // is actually dead; surfaced so the driver runs the
                    // admission protocol at this exact instant.
                    if !self.dead[rank] {
                        continue;
                    }
                    self.rejoin(rank);
                    return Some(SimEvent::Rejoin { rank });
                }
                EventKind::Deliver {
                    src,
                    dst,
                    env,
                    delay_ns,
                    held_ns,
                    held_behind,
                } => {
                    if self.dead[dst] {
                        // The destination died while this was on the wire.
                        self.dropped_by_fault += 1;
                        if let Some(n) = self.in_flight.get_mut(&(src, dst)) {
                            *n = n.saturating_sub(1);
                        }
                        continue;
                    }
                    return Some(self.deliver(src, dst, env, delay_ns, held_ns, held_behind));
                }
                EventKind::Timer { rank, token } => {
                    if self.dead[rank] {
                        continue;
                    }
                    self.maybe_sweep(rank);
                    return Some(SimEvent::Timer { rank, token });
                }
            }
        }
    }

    /// Land one due message in `dst`'s mailbox (the tail of
    /// [`SimWorld::step`]'s Deliver arm).
    fn deliver(
        &mut self,
        src: Rank,
        dst: Rank,
        env: Envelope,
        delay_ns: u64,
        held_ns: u64,
        held_behind: u64,
    ) -> SimEvent {
        self.delivered += 1;
        if let Some(n) = self.in_flight.get_mut(&(src, dst)) {
            *n = n.saturating_sub(1);
        }
        // The wire released the message: a verbose instant on the
        // receiver, and — when the non-overtaking clamp held it —
        // a stall span on the sender ending now (the sim's
        // backpressure signal; see `flush_sends`).
        self.stats[dst]
            .recorder()
            .record(pcoll_obs::LEVEL_VERBOSE, || {
                pcoll_obs::EventKind::NetRelease {
                    dst: dst as u32,
                    delay_ns,
                }
            });
        if held_ns > 0 {
            self.stats[src]
                .recorder()
                .record(pcoll_obs::LEVEL_SPANS, || {
                    pcoll_obs::EventKind::QueueStall {
                        depth: held_behind,
                        dur_ns: held_ns,
                    }
                });
        }
        // Keep the receiver's membership view current: data traffic is a
        // liveness signal, a PeerDown notification is a local verdict.
        match &env {
            Envelope::Data(m) => self.memberships[dst].observe(m.src),
            Envelope::PeerDown { peer } => {
                if self.memberships[dst].report_down(*peer) {
                    self.stats[dst]
                        .recorder()
                        .record(pcoll_obs::LEVEL_SPANS, || pcoll_obs::EventKind::PeerDown {
                            peer: *peer as u32,
                        });
                }
            }
            // Membership was already flipped by [`SimWorld::rejoin`];
            // record the event on the receiving rank's timeline so the
            // flight recorder shows when each survivor learned of it.
            Envelope::PeerUp { peer } => {
                self.stats[dst]
                    .recorder()
                    .record(pcoll_obs::LEVEL_SPANS, || pcoll_obs::EventKind::PeerUp {
                        peer: *peer as u32,
                    });
            }
            Envelope::Shutdown => {}
        }
        self.maybe_sweep(dst);
        if self.mb_txs[dst].try_send(env).is_err() {
            // A full mailbox here means the driver is not draining
            // after deliveries — a bug in the harness, not a
            // backpressure scenario the single-threaded sim can
            // resolve by blocking.
            panic!(
                "sim mailbox for rank {dst} rejected a delivery \
                 (capacity {}): drain the inbox after every event",
                self.cfg.queue_capacity
            );
        }
        SimEvent::Deliver { dst }
    }

    /// When [`WorldConfig::suspect_timeout`] is set, sweep `rank`'s
    /// membership view so a hung (not dead) peer that has been silent
    /// longer than the timeout reaches [`crate::PeerStatus::Suspect`]
    /// without the driver polling. Gated on the knob so the default
    /// configuration pays nothing per event.
    fn maybe_sweep(&self, rank: Rank) {
        if self.cfg.suspect_timeout.is_some() {
            // With grace = suspect_timeout, suspicion crosses 1.0 once
            // the silence exceeds max(EWMA gap, timeout) — i.e. "silent
            // longer than the configured timeout".
            self.memberships[rank].sweep_suspects(1.0);
        }
    }

    /// Whether the schedule is exhausted (nothing queued, nothing staged).
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty() && self.stage.queue.lock().expect("sim stage lock").is_empty()
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Message deliveries so far.
    pub fn messages_delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages destroyed by faults so far (dropped/severed links, dead
    /// endpoints).
    pub fn messages_dropped_by_fault(&self) -> u64 {
        self.dropped_by_fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::{CollId, WireTag};
    use crate::TypedBuf;

    fn world(p: usize, model: NetworkModel, planet: Planet) -> SimWorld {
        let cfg = WorldConfig {
            network: model,
            ..WorldConfig::instant(p)
        };
        SimWorld::new(
            cfg,
            SimOpts {
                planet,
                ..SimOpts::default()
            },
        )
    }

    fn tag(sem: u32) -> WireTag {
        WireTag::new(CollId(1), 0, sem)
    }

    #[test]
    fn planet_wan_is_symmetric_with_cheap_intra_region() {
        let p = Planet::wan();
        for a in 0..p.nregions() {
            for b in 0..p.nregions() {
                assert_eq!(
                    p.one_way(Region(a), Region(b)),
                    p.one_way(Region(b), Region(a))
                );
                if a != b {
                    assert!(p.one_way(Region(a), Region(b)) > p.one_way(Region(a), Region(a)));
                }
            }
        }
    }

    #[test]
    fn rank_region_blocks_cover_all_regions() {
        let p = Planet::wan();
        let counts = (0..64).fold(vec![0usize; 4], |mut acc, r| {
            acc[p.rank_region(r, 64).0] += 1;
            acc
        });
        assert_eq!(counts, vec![16; 4], "contiguous equal blocks");
    }

    #[test]
    fn delivery_advances_virtual_time_by_composed_latency() {
        let mut w = world(
            8,
            NetworkModel::AlphaBeta {
                alpha: Duration::from_micros(100),
                beta_ns_per_byte: 0.0,
                jitter: Duration::ZERO,
            },
            Planet::uniform(2, Duration::from_millis(50)),
        );
        // Rank 0 (region 0) → rank 7 (region 1): 50ms + 100µs.
        let mut inbox7 = w.take_inbox(7);
        w.comm(0)
            .send(7, tag(0), Some(TypedBuf::from(vec![1.0f32])));
        assert_eq!(w.step(), Some(SimEvent::Deliver { dst: 7 }));
        assert_eq!(w.now().as_nanos(), 50_000_000 + 100_000);
        assert!(matches!(inbox7.try_recv(), Some(Envelope::Data(_))));
        // Intra-region pair pays only the model latency.
        let mut inbox1 = w.take_inbox(1);
        w.comm(0)
            .send(1, tag(1), Some(TypedBuf::from(vec![2.0f32])));
        let before = w.now();
        w.step().unwrap();
        assert_eq!(w.now().duration_since(before), Duration::from_micros(100));
        assert!(inbox1.try_recv().is_some());
        let _ = &mut inbox7;
        let _ = &mut inbox1;
    }

    #[test]
    fn same_pair_messages_do_not_overtake_under_jitter() {
        let mut w = world(
            2,
            NetworkModel::AlphaBeta {
                alpha: Duration::from_micros(10),
                beta_ns_per_byte: 0.0,
                jitter: Duration::from_millis(2),
            },
            Planet::single(),
        );
        let inbox = w.take_inbox(1);
        let c = w.comm(0);
        for i in 0..64 {
            c.send(1, tag(i), Some(TypedBuf::from(vec![i as f32])));
        }
        let mut got = Vec::new();
        while let Some(SimEvent::Deliver { dst }) = w.step() {
            assert_eq!(dst, 1);
            match inbox.try_recv() {
                Some(Envelope::Data(m)) => got.push(m.tag.sem),
                other => panic!("unexpected {other:?}"),
            }
        }
        let want: Vec<u32> = (0..64).collect();
        assert_eq!(got, want, "per-pair FIFO under jitter");
    }

    #[test]
    fn event_order_is_bit_identical_across_runs() {
        let run = || {
            let mut w = world(
                4,
                NetworkModel::cloud(),
                Planet::uniform(2, Duration::from_millis(10)),
            );
            let inboxes: Vec<Inbox> = (0..4).map(|r| w.take_inbox(r)).collect();
            for src in 0..4usize {
                let c = w.comm(src);
                for dst in 0..4usize {
                    if dst != src {
                        c.send(dst, tag(src as u32), Some(TypedBuf::from(vec![src as f32])));
                    }
                }
            }
            let mut log = Vec::new();
            while let Some(ev) = w.step() {
                if let SimEvent::Deliver { dst } = ev {
                    if let Some(Envelope::Data(m)) = inboxes[dst].try_recv() {
                        log.push((w.now().as_nanos(), m.src, dst));
                    }
                }
            }
            log
        };
        assert_eq!(run(), run(), "same seed, same schedule, same log");
    }

    #[test]
    fn hung_peer_reaches_suspect_only_with_suspect_timeout() {
        use crate::membership::PeerStatus;
        // One virtual second of total silence, observed at a timer fire.
        let cfg = WorldConfig::instant(3).with_suspect_timeout(Duration::from_millis(50));
        let mut w = SimWorld::new(cfg, SimOpts::default());
        w.schedule_timer(TimePoint::from_nanos(1_000_000_000), 0, 1);
        assert_eq!(w.step(), Some(SimEvent::Timer { rank: 0, token: 1 }));
        assert_eq!(w.membership(0).status(1), PeerStatus::Suspect);
        assert_eq!(w.membership(0).status(2), PeerStatus::Suspect);
        // Without the knob the same silence (well past the default grace)
        // never trips anything: no automatic sweep runs.
        let mut w2 = SimWorld::new(WorldConfig::instant(3), SimOpts::default());
        w2.schedule_timer(TimePoint::from_nanos(1_000_000_000), 0, 1);
        assert_eq!(w2.step(), Some(SimEvent::Timer { rank: 0, token: 1 }));
        assert_eq!(w2.membership(0).status(1), PeerStatus::Alive);
    }

    #[test]
    fn scripted_rejoin_clears_death_and_readmits_in_every_view() {
        let ms = |n: u64| TimePoint::from_nanos(n * 1_000_000);
        let faults = FaultPlan::none()
            .with(Fault::Kill {
                rank: 1,
                at: ms(10),
            })
            .with(Fault::Rejoin {
                rank: 1,
                at: ms(30),
            });
        let mut w = SimWorld::new(
            WorldConfig::instant(3),
            SimOpts {
                faults,
                ..SimOpts::default()
            },
        );
        let inboxes: Vec<Inbox> = (0..3).map(|r| w.take_inbox(r)).collect();
        let mut saw_down = false;
        let mut rejoined_at = None;
        while let Some(ev) = w.step() {
            match ev {
                SimEvent::Deliver { dst } => {
                    if let Some(Envelope::PeerDown { peer }) = inboxes[dst].try_recv() {
                        assert_eq!(peer, 1);
                        saw_down = true;
                        assert!(w.is_dead(1), "PeerDown precedes the comeback");
                    }
                }
                SimEvent::Rejoin { rank } => {
                    assert_eq!(rank, 1);
                    rejoined_at = Some(w.now());
                }
                SimEvent::Timer { .. } => {}
            }
        }
        assert!(saw_down, "kill must fan PeerDown to the survivors");
        assert_eq!(rejoined_at, Some(ms(30)));
        assert!(!w.is_dead(1));
        assert_eq!(w.live_ranks(), vec![0, 1, 2]);
        for r in 0..3 {
            assert_eq!(w.membership(r).live(), vec![0, 1, 2], "rank {r} view");
        }
    }

    #[test]
    fn timers_interleave_with_deliveries_in_due_order() {
        let mut w = world(2, NetworkModel::Instant, Planet::single());
        let _inbox = w.take_inbox(1);
        w.schedule_timer(TimePoint::from_nanos(500), 0, 7);
        w.schedule_timer(TimePoint::from_nanos(100), 1, 8);
        let events: Vec<SimEvent> = std::iter::from_fn(|| w.step()).collect();
        assert_eq!(
            events,
            vec![
                SimEvent::Timer { rank: 1, token: 8 },
                SimEvent::Timer { rank: 0, token: 7 },
            ]
        );
        assert_eq!(w.now().as_nanos(), 500);
    }
}
