//! # pcoll-comm — in-process message-passing substrate
//!
//! This crate provides the communication layer that the partial-collective
//! engine (`pcoll-sched`, `pcoll`) is built on. It plays the role that
//! Cray MPICH played in the paper: reliable, tagged, point-to-point message
//! delivery between `P` ranks.
//!
//! Ranks are OS threads inside one process (see [`World::launch`]); a real
//! network transport could be slotted in behind the same [`CommHandle`] /
//! [`Inbox`] API. A configurable [`NetworkModel`] injects per-message
//! latency (`alpha + bytes * beta + jitter`) through a dedicated delivery
//! thread, preserving per-(src, dst) FIFO ordering (the MPI non-overtaking
//! rule).
//!
//! Design notes:
//! - Buffers are **typed** ([`TypedBuf`]) rather than raw bytes: reductions
//!   dispatch on dtype with no `unsafe`.
//! - Messages are matched downstream on [`WireTag`] = (collective id, round,
//!   semantic tag); this crate only transports them.
//! - The [`Matcher`] offers blocking point-to-point receive for direct use
//!   (tests, simple algorithms); the schedule engine instead takes the raw
//!   [`Inbox`] and performs its own matching.

pub mod buf;
pub mod matcher;
pub mod net;
pub mod tag;
pub mod world;

pub use buf::{BufError, DType, ReduceOp, TypedBuf};
pub use matcher::Matcher;
pub use net::NetworkModel;
pub use tag::{CollId, Message, Rank, WireTag};
pub use world::{CommHandle, Communicator, Envelope, Inbox, World, WorldConfig};
