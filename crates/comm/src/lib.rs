//! # pcoll-comm — message-passing substrate
//!
//! This crate provides the communication layer that the partial-collective
//! engine (`pcoll-sched`, `pcoll`) is built on. It plays the role that
//! Cray MPICH played in the paper: reliable, tagged, point-to-point message
//! delivery between `P` ranks.
//!
//! Three [`Transport`] backends sit behind the same [`CommHandle`] /
//! [`Inbox`] API:
//!
//! - **In-process** (the [`World::launch`] default): ranks are OS threads
//!   inside one process, messages move over channels — zero setup cost,
//!   the right tool for unit tests and single-host experiments.
//! - **TCP** ([`World::launch_tcp`], `--transport tcp` in the harnesses):
//!   each rank is its own OS process on loopback sockets with
//!   length-prefixed binary framing, a parent-coordinated rendezvous, and
//!   an orderly goodbye handshake — real process-level SPMD, honest
//!   latency, and a process-skew scenario axis (see the [`transport`]
//!   module).
//! - **Sim** ([`sim::SimWorld`], `--transport sim`): a single-process
//!   discrete-event simulator with a virtual [`Clock`], a priority-queue
//!   event schedule, and deliveries drawn from a region-to-region
//!   [`sim::Planet`] latency matrix composed with the [`NetworkModel`] —
//!   P = 1,024+ rank experiments on one box, bit-identical at a fixed
//!   seed (see the [`sim`] module).
//!
//! A configurable [`NetworkModel`] injects per-message latency (`alpha +
//! bytes * beta + jitter`) through a delivery thread on every backend,
//! preserving per-(src, dst) FIFO ordering (the MPI non-overtaking rule).
//! Code above the transport reads time through the [`Clock`] handle
//! (the [`time`] module, re-exported from `pcoll_obs`): wall time on the
//! first two backends, virtual time under the simulator. The same crate
//! supplies the flight [`Recorder`] every rank carries on its
//! [`CommStats`] ([`WorldConfig::with_trace`] or `PCOLL_TRACE=1|2` turn
//! it on); see `pcoll_obs` for the event schema and Perfetto export.
//!
//! Design notes:
//! - Buffers are **typed** ([`TypedBuf`]) rather than raw bytes: reductions
//!   dispatch on dtype with no `unsafe`; the TCP wire format is the raw
//!   little-endian element bytes.
//! - Payloads are **shared** ([`Payload`], an `Arc`-backed buffer): fanning
//!   one tensor out to many destinations bumps a reference count per copy
//!   instead of cloning element data, and mutation is copy-on-write.
//! - Every send route is a **bounded queue** ([`WorldConfig::queue_capacity`]):
//!   a sender that outruns a slow consumer blocks for space (backpressure)
//!   instead of ballooning memory, panicking with a diagnostic after
//!   [`WorldConfig::queue_deadline`]. Queue pressure is counted per rank
//!   in [`CommStats`].
//! - Messages are matched downstream on [`WireTag`] = (collective id, round,
//!   semantic tag); this crate only transports them.
//! - The [`Matcher`] offers blocking point-to-point receive for direct use
//!   (tests, simple algorithms); the schedule engine instead takes the raw
//!   [`Inbox`] and performs its own matching.

#![deny(missing_docs)]

pub mod buf;
pub mod matcher;
pub mod membership;
pub mod net;
pub mod payload;
pub mod pool;
pub mod sim;
pub mod stats;
pub mod tag;
pub mod transport;
pub mod world;

pub use pcoll_obs::time;

pub use buf::{reduce_f32_slices, BufError, DType, ReduceOp, TypedBuf};
pub use matcher::Matcher;
pub use membership::{Membership, PeerStatus};
pub use net::NetworkModel;
pub use payload::Payload;
pub use pcoll_obs::time::{Clock, TimePoint};
pub use pcoll_obs::{Recorder, TraceConfig};
pub use pool::BytePool;
pub use sim::{Fault, FaultPlan, Planet, Region, SimEvent, SimOpts, SimWorld};
pub use stats::{CommStats, CommStatsSnapshot};
pub use tag::{CollId, Message, Rank, WireTag};
pub use transport::{
    is_tcp_rejoiner, is_tcp_worker, launch_tcp_tolerant, RendezvousClient, TcpOpts, Transport,
};
pub use world::{
    CommHandle, Communicator, Envelope, FaultAction, FaultHook, Inbox, World, WorldConfig,
    DEFAULT_QUEUE_CAPACITY, DEFAULT_QUEUE_DEADLINE,
};
