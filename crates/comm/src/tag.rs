//! Message addressing: ranks, collective ids, wire tags.

use crate::payload::Payload;
use serde::{Deserialize, Serialize};

/// A process index in `0..P`, identical in spirit to an MPI rank.
pub type Rank = usize;

/// Identifier of a registered (persistent) collective. Each logical
/// collective call-site — e.g. "the gradient allreduce" or "the model-sync
/// allreduce" — gets one `CollId`; successive executions are distinguished
/// by the round number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CollId(pub u32);

/// The full matching key carried by every message.
///
/// `sem` is a semantic tag namespace owned by the schedule builders (e.g.
/// "activation hop at tree level k" vs "data exchange at level k"). A
/// receive operation matches a message when `(src, coll, round, sem)` all
/// agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WireTag {
    /// The persistent collective this message belongs to.
    pub coll: CollId,
    /// The collective's round (execution) number.
    pub round: u64,
    /// Semantic tag within the schedule (builder-owned namespace).
    pub sem: u32,
}

impl WireTag {
    /// Assemble a tag from its parts.
    pub fn new(coll: CollId, round: u64, sem: u32) -> Self {
        WireTag { coll, round, sem }
    }
}

/// A delivered message. `payload == None` is a zero-byte control message
/// (the activation broadcast of a solo/majority collective is one).
///
/// The payload is a shared [`Payload`]: cloning the message for a
/// multi-destination send (or holding it in the delivery shaper while
/// the sender's slot still owns it) bumps a reference count instead of
/// copying element data.
#[derive(Debug)]
pub struct Message {
    /// Sending rank.
    pub src: Rank,
    /// Matching key (collective, round, semantic tag).
    pub tag: WireTag,
    /// Data, if any; shared zero-copy across fan-out destinations.
    pub payload: Option<Payload>,
}

impl Message {
    /// Bytes on the wire this message is charged for by the network model.
    /// Control messages cost a small fixed header.
    pub fn wire_bytes(&self) -> usize {
        const HEADER: usize = 32;
        HEADER + self.payload.as_ref().map_or(0, |p| p.byte_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_counts_header_and_payload() {
        let m = Message {
            src: 0,
            tag: WireTag::new(CollId(1), 0, 0),
            payload: None,
        };
        assert_eq!(m.wire_bytes(), 32);
        let m = Message {
            src: 0,
            tag: WireTag::new(CollId(1), 0, 0),
            payload: Some(crate::TypedBuf::zeros(crate::DType::F32, 16).into()),
        };
        assert_eq!(m.wire_bytes(), 32 + 64);
    }
}
