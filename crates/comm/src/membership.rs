//! Per-peer liveness tracking: the failure-detection half of elastic
//! membership.
//!
//! One [`Membership`] lives on each rank, shared by its transport threads
//! (TCP readers/writers, the engine's envelope intake) through an `Arc`.
//! It answers two questions the rest of the stack keeps asking:
//!
//! - **"have I heard from peer q recently?"** — every delivered message
//!   (and every heartbeat frame on an otherwise idle TCP link) calls
//!   [`Membership::observe`], which is a couple of relaxed atomic stores:
//!   the hot path stays allocation- and lock-free.
//! - **"is peer q gone?"** — hard evidence (connection reset, read EOF)
//!   calls [`Membership::report_down`]; soft evidence accrues through
//!   [`Membership::suspicion`], a phi-accrual-flavoured score comparing
//!   the silence so far against the observed inter-arrival EWMA. Time is
//!   read through the transport [`Clock`], so the same detector runs
//!   under wall time (inproc/TCP) and virtual time (the simulator).
//!
//! Status is monotonic per peer: `Alive → Suspect → Down → Evicted` —
//! with one sanctioned reverse edge. `Down` is a *local* verdict;
//! `Evicted` records the SPMD-fenced agreement (see `pcoll`'s eviction
//! protocol) that every survivor treats the rank as absent. When the
//! survivors later run the *admission* fence in reverse,
//! [`Membership::readmit`] moves the peer straight back to `Alive`:
//! no local evidence may resurrect a down peer, but a consensus
//! decision can. The `epoch` counter bumps on every down/evict/readmit
//! transition so pollers can cheaply detect "membership changed since I
//! last looked".

use crate::tag::Rank;
use crate::time::Clock;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// Liveness status of one peer, as seen from the local rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerStatus {
    /// Traffic (or no evidence against) — the healthy default.
    Alive,
    /// Silent for suspiciously long; not yet declared dead.
    Suspect,
    /// Locally declared dead (socket error/EOF or suspicion timeout).
    Down,
    /// Survivors agreed to treat this rank as permanently absent.
    Evicted,
}

const ST_ALIVE: u8 = 0;
const ST_SUSPECT: u8 = 1;
const ST_DOWN: u8 = 2;
const ST_EVICTED: u8 = 3;

struct PeerState {
    /// Clock nanoseconds of the most recent traffic from this peer.
    last_heard_ns: AtomicU64,
    /// EWMA of inter-arrival gaps, in nanoseconds (0 = no sample yet).
    mean_interval_ns: AtomicU64,
    status: AtomicU8,
}

/// Per-peer liveness view (see module docs). Cheap to share: all state is
/// atomics; no locks anywhere.
pub struct Membership {
    rank: Rank,
    peers: Vec<PeerState>,
    clock: Clock,
    /// Minimum silence before [`Membership::suspicion`] reports > 0.
    grace: Duration,
    /// Bumped on every down/evict transition.
    epoch: AtomicU64,
}

/// Default grace period before silence starts accruing suspicion.
pub const DEFAULT_SUSPICION_GRACE: Duration = Duration::from_millis(500);

impl std::fmt::Debug for Membership {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Membership")
            .field("rank", &self.rank)
            .field("size", &self.peers.len())
            .field("live", &self.live())
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl Membership {
    /// A membership view for `rank` of `size`, timing silence on `clock`.
    pub fn new(rank: Rank, size: usize, clock: Clock) -> Membership {
        Membership::with_grace(rank, size, clock, DEFAULT_SUSPICION_GRACE)
    }

    /// [`Membership::new`] with an explicit suspicion grace period.
    pub fn with_grace(rank: Rank, size: usize, clock: Clock, grace: Duration) -> Membership {
        let now = clock.now().as_nanos();
        Membership {
            rank,
            peers: (0..size)
                .map(|_| PeerState {
                    last_heard_ns: AtomicU64::new(now),
                    mean_interval_ns: AtomicU64::new(0),
                    status: AtomicU8::new(ST_ALIVE),
                })
                .collect(),
            clock,
            grace,
            epoch: AtomicU64::new(0),
        }
    }

    /// The local rank this view belongs to.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// World size (P), counting every rank dead or alive.
    pub fn size(&self) -> usize {
        self.peers.len()
    }

    /// Record traffic from `peer`: refresh its last-heard stamp, fold the
    /// inter-arrival gap into the EWMA, and clear a `Suspect` verdict
    /// (never a `Down`/`Evicted` one — those are sticky). Hot path:
    /// relaxed atomics only.
    #[inline]
    pub fn observe(&self, peer: Rank) {
        let Some(p) = self.peers.get(peer) else {
            return;
        };
        let now = self.clock.now().as_nanos();
        let prev = p.last_heard_ns.swap(now, Ordering::Relaxed);
        let gap = now.saturating_sub(prev);
        // EWMA with alpha = 1/4 (shifts, no floats on the hot path).
        let old = p.mean_interval_ns.load(Ordering::Relaxed);
        let next = if old == 0 {
            gap
        } else {
            old - (old >> 2) + (gap >> 2)
        };
        p.mean_interval_ns.store(next, Ordering::Relaxed);
        let _ =
            p.status
                .compare_exchange(ST_SUSPECT, ST_ALIVE, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Phi-accrual-flavoured suspicion score for `peer`: 0 while traffic
    /// is fresher than the grace period, then the current silence divided
    /// by the expected inter-arrival gap (EWMA, floored at the grace
    /// period). A score ≥ `threshold` (typically 4–8) means the silence
    /// is that many expected gaps long. Down/evicted peers score
    /// `f64::INFINITY`.
    pub fn suspicion(&self, peer: Rank) -> f64 {
        let Some(p) = self.peers.get(peer) else {
            return 0.0;
        };
        if peer == self.rank {
            return 0.0;
        }
        if p.status.load(Ordering::Relaxed) >= ST_DOWN {
            return f64::INFINITY;
        }
        let now = self.clock.now().as_nanos();
        let silent = now.saturating_sub(p.last_heard_ns.load(Ordering::Relaxed));
        let grace = self.grace.as_nanos() as u64;
        if silent <= grace {
            return 0.0;
        }
        let mean = p.mean_interval_ns.load(Ordering::Relaxed).max(grace).max(1);
        silent as f64 / mean as f64
    }

    /// Mark `peer` as [`PeerStatus::Suspect`] when its suspicion exceeds
    /// `threshold`; returns the peers newly moved to suspect. Call this
    /// from a housekeeping point (the engine's idle loop, a sim timer) —
    /// it is not on the message hot path.
    pub fn sweep_suspects(&self, threshold: f64) -> Vec<Rank> {
        let mut newly = Vec::new();
        for peer in 0..self.peers.len() {
            if peer == self.rank {
                continue;
            }
            if self.suspicion(peer) >= threshold
                && self.peers[peer]
                    .status
                    .compare_exchange(ST_ALIVE, ST_SUSPECT, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                newly.push(peer);
            }
        }
        newly
    }

    /// Hard evidence that `peer` is gone (socket reset, read EOF,
    /// suspicion timeout expired). Returns `true` exactly once — the
    /// first caller to move the peer to `Down` — so exactly one
    /// `PeerDown` envelope gets routed per peer. Bumps the epoch.
    pub fn report_down(&self, peer: Rank) -> bool {
        let Some(p) = self.peers.get(peer) else {
            return false;
        };
        if peer == self.rank {
            return false;
        }
        loop {
            let cur = p.status.load(Ordering::Relaxed);
            if cur >= ST_DOWN {
                return false;
            }
            if p.status
                .compare_exchange(cur, ST_DOWN, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.epoch.fetch_add(1, Ordering::AcqRel);
                return true;
            }
        }
    }

    /// Record the SPMD-fenced eviction agreement for `peer` (implies
    /// down). Bumps the epoch when the status actually changed.
    pub fn evict(&self, peer: Rank) {
        let Some(p) = self.peers.get(peer) else {
            return;
        };
        if p.status.swap(ST_EVICTED, Ordering::AcqRel) != ST_EVICTED {
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Record the SPMD-fenced *re-admission* agreement for `peer`: the
    /// one sanctioned reverse transition in the otherwise monotonic
    /// status ladder. Local evidence (`observe`) can never resurrect a
    /// down or evicted peer — only the consensus admission fence may,
    /// because it proves every live rank switches its schedules in the
    /// same round. Resets the peer to `Alive` with fresh timing state
    /// (stale silence from before the death must not instantly re-trip
    /// the detector) and bumps the epoch when the status changed.
    pub fn readmit(&self, peer: Rank) {
        let Some(p) = self.peers.get(peer) else {
            return;
        };
        p.last_heard_ns
            .store(self.clock.now().as_nanos(), Ordering::Relaxed);
        p.mean_interval_ns.store(0, Ordering::Relaxed);
        if p.status.swap(ST_ALIVE, Ordering::AcqRel) != ST_ALIVE {
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// `peer`'s current status.
    pub fn status(&self, peer: Rank) -> PeerStatus {
        match self.peers[peer].status.load(Ordering::Relaxed) {
            ST_ALIVE => PeerStatus::Alive,
            ST_SUSPECT => PeerStatus::Suspect,
            ST_DOWN => PeerStatus::Down,
            _ => PeerStatus::Evicted,
        }
    }

    /// Whether `peer` is locally down or evicted.
    #[inline]
    pub fn is_down(&self, peer: Rank) -> bool {
        self.peers
            .get(peer)
            .is_some_and(|p| p.status.load(Ordering::Relaxed) >= ST_DOWN)
    }

    /// Whether `peer` was evicted by consensus.
    pub fn is_evicted(&self, peer: Rank) -> bool {
        self.peers
            .get(peer)
            .is_some_and(|p| p.status.load(Ordering::Relaxed) == ST_EVICTED)
    }

    /// The live ranks (not down, not evicted), sorted; always contains
    /// the local rank.
    pub fn live(&self) -> Vec<Rank> {
        (0..self.peers.len())
            .filter(|&r| !self.is_down(r))
            .collect()
    }

    /// The ranks locally declared down or evicted, sorted.
    pub fn down(&self) -> Vec<Rank> {
        (0..self.peers.len()).filter(|&r| self.is_down(r)).collect()
    }

    /// The ranks evicted by consensus, sorted.
    pub fn evicted(&self) -> Vec<Rank> {
        (0..self.peers.len())
            .filter(|&r| self.is_evicted(r))
            .collect()
    }

    /// Membership-change counter: bumps on every down/evict transition.
    /// Pollers compare against a remembered value to skip work when
    /// nothing changed.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimePoint;

    fn virtual_membership(p: usize) -> (Membership, Clock) {
        let clock = Clock::virtual_clock();
        let m = Membership::with_grace(0, p, clock.clone(), Duration::from_millis(100));
        (m, clock)
    }

    #[test]
    fn fresh_peers_are_alive_with_zero_suspicion() {
        let (m, _clock) = virtual_membership(4);
        for r in 0..4 {
            assert_eq!(m.status(r), PeerStatus::Alive);
            assert_eq!(m.suspicion(r), 0.0);
        }
        assert_eq!(m.live(), vec![0, 1, 2, 3]);
        assert_eq!(m.epoch(), 0);
    }

    #[test]
    fn suspicion_grows_with_silence_on_the_virtual_clock() {
        let (m, clock) = virtual_membership(2);
        // Establish a ~10ms cadence from peer 1.
        for step in 1..=5u64 {
            clock.advance_to(TimePoint::from_nanos(step * 10_000_000));
            m.observe(1);
        }
        assert_eq!(m.suspicion(1), 0.0);
        // Silence for 1s: far beyond the 100ms grace and the 10ms EWMA.
        clock.advance(Duration::from_secs(1));
        assert!(m.suspicion(1) > 4.0, "got {}", m.suspicion(1));
        assert_eq!(m.sweep_suspects(4.0), vec![1]);
        assert_eq!(m.status(1), PeerStatus::Suspect);
        // Traffic clears the suspect verdict.
        m.observe(1);
        assert_eq!(m.status(1), PeerStatus::Alive);
    }

    #[test]
    fn report_down_fires_exactly_once_and_bumps_epoch() {
        let (m, _clock) = virtual_membership(3);
        assert!(m.report_down(2));
        assert!(!m.report_down(2), "second report must be a no-op");
        assert_eq!(m.status(2), PeerStatus::Down);
        assert_eq!(m.live(), vec![0, 1]);
        assert_eq!(m.down(), vec![2]);
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.suspicion(2), f64::INFINITY);
        // Traffic cannot resurrect a down peer.
        m.observe(2);
        assert_eq!(m.status(2), PeerStatus::Down);
    }

    #[test]
    fn eviction_is_sticky_and_implies_down() {
        let (m, _clock) = virtual_membership(4);
        m.report_down(3);
        m.evict(3);
        assert_eq!(m.status(3), PeerStatus::Evicted);
        assert!(m.is_down(3) && m.is_evicted(3));
        assert_eq!(m.evicted(), vec![3]);
        assert_eq!(m.epoch(), 2);
        m.evict(3);
        assert_eq!(m.epoch(), 2, "re-evicting does not bump the epoch");
    }

    #[test]
    fn readmit_reverses_eviction_and_resets_the_detector() {
        let (m, clock) = virtual_membership(4);
        m.report_down(3);
        m.evict(3);
        assert_eq!(m.status(3), PeerStatus::Evicted);
        let epoch_before = m.epoch();
        // Long-dead: without a timing reset, re-admission would inherit
        // the stale silence and instantly re-trip the detector.
        clock.advance(Duration::from_secs(60));
        m.readmit(3);
        assert_eq!(m.status(3), PeerStatus::Alive);
        assert_eq!(m.suspicion(3), 0.0, "readmit must reset timing state");
        assert_eq!(m.live(), vec![0, 1, 2, 3]);
        assert_eq!(m.epoch(), epoch_before + 1);
        m.readmit(3);
        assert_eq!(
            m.epoch(),
            epoch_before + 1,
            "re-readmitting does not bump the epoch"
        );
    }

    #[test]
    fn self_is_never_suspected_or_downed() {
        let (m, clock) = virtual_membership(2);
        clock.advance(Duration::from_secs(60));
        assert_eq!(m.suspicion(0), 0.0);
        assert!(!m.report_down(0));
        assert_eq!(m.sweep_suspects(0.5), vec![1]);
        assert_eq!(m.status(0), PeerStatus::Alive);
    }
}
