//! Shared message payloads: the zero-copy unit of the data hot path.
//!
//! A [`Payload`] is an `Arc`-backed [`TypedBuf`]: cloning one is a
//! reference-count bump, never a memcpy. This is what lets the engine's
//! `SendData` fan a round's contribution out to every peer in a tree or
//! ring while all in-flight copies — the sender's slot, the messages
//! queued in the delivery shaper, each destination mailbox — share one
//! allocation. Mutation goes through [`Payload::to_mut`], which is
//! copy-on-write: in the steady state (a uniquely-owned reduction
//! accumulator) it is a plain `&mut` borrow; only a buffer that is still
//! shared with an in-flight message pays for a copy, which is exactly
//! the aliasing case where a copy is semantically required.

use crate::buf::TypedBuf;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable, shared, typed message payload (see module docs).
#[derive(Debug, Clone)]
pub struct Payload {
    inner: Arc<TypedBuf>,
}

impl Payload {
    /// Wrap an owned buffer (one allocation for the `Arc` control block;
    /// the element storage is taken over, not copied).
    pub fn new(buf: TypedBuf) -> Self {
        Payload {
            inner: Arc::new(buf),
        }
    }

    /// Borrow the underlying buffer.
    #[inline]
    pub fn buf(&self) -> &TypedBuf {
        &self.inner
    }

    /// Mutable access, copy-on-write: borrows in place when this is the
    /// only owner, clones the buffer first when it is still shared.
    pub fn to_mut(&mut self) -> &mut TypedBuf {
        Arc::make_mut(&mut self.inner)
    }

    /// Recover the owned buffer: free when this is the last owner, one
    /// copy otherwise.
    pub fn into_buf(self) -> TypedBuf {
        Arc::try_unwrap(self.inner).unwrap_or_else(|arc| (*arc).clone())
    }

    /// Number of live clones sharing this allocation (diagnostics).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// True if `self` and `other` share the same allocation (the
    /// zero-copy invariant tests assert).
    pub fn shares_allocation_with(&self, other: &Payload) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Deref for Payload {
    type Target = TypedBuf;

    #[inline]
    fn deref(&self) -> &TypedBuf {
        &self.inner
    }
}

impl From<TypedBuf> for Payload {
    fn from(buf: TypedBuf) -> Self {
        Payload::new(buf)
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality first: shared clones compare without an
        // elementwise walk.
        Arc::ptr_eq(&self.inner, &other.inner) || *self.inner == *other.inner
    }
}

impl PartialEq<TypedBuf> for Payload {
    fn eq(&self, other: &TypedBuf) -> bool {
        *self.inner == *other
    }
}

impl serde::Serialize for Payload {
    fn to_value(&self) -> serde::json::Value {
        self.inner.to_value()
    }
}

impl serde::Deserialize for Payload {
    fn from_value(v: &serde::json::Value) -> Result<Self, serde::json::Error> {
        TypedBuf::from_value(v).map(Payload::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = Payload::new(TypedBuf::from(vec![1.0f32; 1024]));
        let b = a.clone();
        assert!(a.shares_allocation_with(&b));
        assert_eq!(a.ref_count(), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn to_mut_is_in_place_when_unique() {
        let mut a = Payload::new(TypedBuf::from(vec![1.0f32, 2.0]));
        let before = a.buf().as_f32().unwrap().as_ptr();
        a.to_mut().scale(2.0);
        assert_eq!(a.buf().as_f32().unwrap(), &[2.0, 4.0]);
        assert_eq!(
            a.buf().as_f32().unwrap().as_ptr(),
            before,
            "unique owner must mutate in place"
        );
    }

    #[test]
    fn to_mut_copies_only_when_shared() {
        let mut a = Payload::new(TypedBuf::from(vec![1.0f32, 2.0]));
        let b = a.clone();
        a.to_mut().scale(10.0);
        assert_eq!(a.buf().as_f32().unwrap(), &[10.0, 20.0]);
        assert_eq!(b.buf().as_f32().unwrap(), &[1.0, 2.0], "sharers unharmed");
        assert!(!a.shares_allocation_with(&b));
    }

    #[test]
    fn into_buf_is_free_for_the_last_owner() {
        let a = Payload::new(TypedBuf::from(vec![7i64; 8]));
        let ptr = a.buf().as_i64().unwrap().as_ptr();
        let owned = a.into_buf();
        assert_eq!(owned.as_i64().unwrap().as_ptr(), ptr, "no copy");
    }

    #[test]
    fn deref_exposes_typed_buf_api() {
        let a = Payload::new(TypedBuf::from(vec![3i32, 4]));
        assert_eq!(a.len(), 2);
        assert_eq!(a.as_i32().unwrap(), &[3, 4]);
        assert_eq!(a.byte_len(), 8);
    }
}
