//! Shared message payloads: the zero-copy unit of the data hot path.
//!
//! A [`Payload`] is a reference-counted buffer plus an element range.
//! Cloning one is a reference-count bump, never a memcpy — this is what
//! lets the engine's `SendData` fan a round's contribution out to every
//! peer while all in-flight copies share one allocation — and
//! [`Payload::view`] narrows the range for the same price, so a ring or
//! segmented schedule can put a *slice* of a tensor on the wire without
//! materializing it.
//!
//! Two representations sit behind the same API:
//!
//! - **Typed**: an `Arc<TypedBuf>` — what senders build and what the
//!   in-process transport moves end to end.
//! - **Wire**: the raw little-endian element bytes exactly as a TCP frame
//!   carried them. The socket reader wraps the frame body without
//!   decoding it; the bytes are only interpreted where they are consumed —
//!   and the hot consumer, a reduction ([`Payload::reduce_assign`], the
//!   engine's `Combine`), folds them straight into the destination buffer
//!   via [`TypedBuf::combine_le_bytes`] with **no** intermediate
//!   `TypedBuf` materialization.
//!
//! Mutation goes through the `*_assign` methods, which are copy-on-write:
//! a uniquely-owned full-range typed payload (the steady-state reduction
//! accumulator) mutates in place; a shared, viewed, or wire-borne one
//! first materializes exactly its own range.

use crate::buf::{BufError, TypedBuf};
use crate::{DType, ReduceOp};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Repr {
    Typed(Arc<TypedBuf>),
    /// Raw little-endian element bytes as read from a TCP frame.
    Wire {
        dtype: DType,
        bytes: Arc<Vec<u8>>,
    },
}

/// A cheaply-cloneable, shared, typed message payload (see module docs).
///
/// ```
/// use pcoll_comm::{Payload, ReduceOp, TypedBuf};
///
/// // Clone = share: both handles alias one allocation.
/// let a = Payload::new(TypedBuf::from(vec![1.0f32, 2.0, 3.0, 4.0]));
/// let b = a.clone();
/// assert!(a.shares_allocation_with(&b));
///
/// // View = share a slice: same allocation, narrower range.
/// let tail = a.view(2, 2);
/// assert_eq!(tail.as_f32(), Some(&[3.0, 4.0][..]));
/// assert!(tail.shares_allocation_with(&a));
///
/// // Mutate = copy-on-write: `b` detaches; `a` is untouched.
/// let mut b = b;
/// b.to_mut().as_f32_mut().unwrap()[0] = 9.0;
/// assert!(!b.shares_allocation_with(&a));
/// assert_eq!(a.as_f32().unwrap()[0], 1.0);
///
/// // Reduce from the wire: undecoded little-endian frame bytes fold
/// // straight into the accumulator, no intermediate buffer.
/// let wire = Payload::from_wire(a.dtype(), 2.0f32.to_le_bytes().repeat(4)).unwrap();
/// let mut acc = a.clone();
/// acc.reduce_assign(&wire, ReduceOp::Sum).unwrap();
/// assert_eq!(acc.as_f32(), Some(&[3.0, 4.0, 5.0, 6.0][..]));
/// ```
#[derive(Debug, Clone)]
pub struct Payload {
    repr: Repr,
    /// Element range this payload exposes (a view of the allocation).
    start: usize,
    len: usize,
}

impl Payload {
    /// Wrap an owned buffer (one allocation for the `Arc` control block;
    /// the element storage is taken over, not copied).
    pub fn new(buf: TypedBuf) -> Self {
        let len = buf.len();
        Payload {
            repr: Repr::Typed(Arc::new(buf)),
            start: 0,
            len,
        }
    }

    /// Wrap raw wire bytes (the TCP reader's undecoded frame body).
    /// `None` if `bytes` is not a whole number of `dtype` elements.
    pub fn from_wire(dtype: DType, bytes: Vec<u8>) -> Option<Self> {
        if !bytes.len().is_multiple_of(dtype.size_of()) {
            return None;
        }
        let len = bytes.len() / dtype.size_of();
        Some(Payload {
            repr: Repr::Wire {
                dtype,
                bytes: Arc::new(bytes),
            },
            start: 0,
            len,
        })
    }

    /// The element type.
    #[inline]
    pub fn dtype(&self) -> DType {
        match &self.repr {
            Repr::Typed(b) => b.dtype(),
            Repr::Wire { dtype, .. } => *dtype,
        }
    }

    /// Number of elements in this payload's range.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the range holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Payload size in bytes (what the network model charges for).
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.len * self.dtype().size_of()
    }

    /// True when this payload carries undecoded wire bytes.
    pub fn is_wire(&self) -> bool {
        matches!(self.repr, Repr::Wire { .. })
    }

    /// A sub-range view sharing this payload's allocation: a reference
    /// count bump, never an element copy. Panics on an out-of-range view.
    pub fn view(&self, start: usize, len: usize) -> Payload {
        assert!(
            start + len <= self.len,
            "view {start}..{} exceeds payload of {} elements",
            start + len,
            self.len
        );
        Payload {
            repr: self.repr.clone(),
            start: self.start + start,
            len,
        }
    }

    /// True when this payload exposes less than its whole allocation.
    pub fn is_view(&self) -> bool {
        let full = match &self.repr {
            Repr::Typed(b) => b.len(),
            Repr::Wire { dtype, bytes } => bytes.len() / dtype.size_of(),
        };
        self.start != 0 || self.len != full
    }

    /// View as `&[f32]` — typed payloads only (wire bytes are not
    /// reinterpreted in place; decode via [`Payload::to_buf`] or reduce
    /// via [`Payload::reduce_assign`]).
    pub fn as_f32(&self) -> Option<&[f32]> {
        match &self.repr {
            Repr::Typed(b) => b.as_f32().map(|v| &v[self.start..self.start + self.len]),
            Repr::Wire { .. } => None,
        }
    }

    /// View as `&[f64]` (typed payloads only).
    pub fn as_f64(&self) -> Option<&[f64]> {
        match &self.repr {
            Repr::Typed(b) => b.as_f64().map(|v| &v[self.start..self.start + self.len]),
            Repr::Wire { .. } => None,
        }
    }

    /// View as `&[i32]` (typed payloads only).
    pub fn as_i32(&self) -> Option<&[i32]> {
        match &self.repr {
            Repr::Typed(b) => b.as_i32().map(|v| &v[self.start..self.start + self.len]),
            Repr::Wire { .. } => None,
        }
    }

    /// View as `&[i64]` (typed payloads only).
    pub fn as_i64(&self) -> Option<&[i64]> {
        match &self.repr {
            Repr::Typed(b) => b.as_i64().map(|v| &v[self.start..self.start + self.len]),
            Repr::Wire { .. } => None,
        }
    }

    /// True if every element in this payload's range is exactly zero (a
    /// null contribution). Zero-copy for typed payloads; wire payloads
    /// decode first so float edge cases (`-0.0`) agree with
    /// [`TypedBuf::is_null`] on the decoded values.
    pub fn is_null(&self) -> bool {
        match &self.repr {
            Repr::Typed(_) => self
                .as_f32()
                .map(|v| v.iter().all(|x| *x == 0.0))
                .or_else(|| self.as_f64().map(|v| v.iter().all(|x| *x == 0.0)))
                .or_else(|| self.as_i32().map(|v| v.iter().all(|x| *x == 0)))
                .or_else(|| self.as_i64().map(|v| v.iter().all(|x| *x == 0)))
                .expect("typed payload matches one dtype"),
            Repr::Wire { .. } => self.to_buf().is_null(),
        }
    }

    /// This payload's range of the wire bytes, when wire-borne.
    fn wire_range(&self) -> Option<(DType, &[u8])> {
        match &self.repr {
            Repr::Wire { dtype, bytes } => {
                let esz = dtype.size_of();
                Some((
                    *dtype,
                    &bytes[self.start * esz..(self.start + self.len) * esz],
                ))
            }
            Repr::Typed(_) => None,
        }
    }

    /// Materialize this payload's range as an owned buffer (decodes wire
    /// bytes; copies a typed range).
    pub fn to_buf(&self) -> TypedBuf {
        match &self.repr {
            Repr::Typed(b) => b.slice_buf(self.start, self.len),
            Repr::Wire { .. } => {
                let (dtype, raw) = self.wire_range().expect("wire repr");
                TypedBuf::from_le_bytes(dtype, raw).expect("whole elements by construction")
            }
        }
    }

    /// Recover an owned buffer: free for the last owner of a full-range
    /// typed payload, one copy (or one decode) otherwise.
    pub fn into_buf(self) -> TypedBuf {
        if self.is_view() {
            return self.to_buf();
        }
        match self.repr {
            Repr::Typed(arc) => Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone()),
            Repr::Wire { .. } => self.to_buf(),
        }
    }

    /// Materialize as an owned, full-range payload: one range-sized copy
    /// that decouples the range from the backing allocation.
    pub fn owned_range(&self, start: usize, len: usize) -> Payload {
        Payload::new(self.view(start, len).to_buf())
    }

    /// Recover the owned buffer without ever copying: `Ok` exactly when
    /// this handle is the last owner of a full-range typed payload,
    /// `Err(self)` (unchanged) otherwise. This is how the engine harvests
    /// a completed instance's buffers into its recycle pool — a buffer
    /// still shared with an in-flight send or a peer simply fails the
    /// unwrap and is retried or dropped.
    pub fn try_into_buf(self) -> Result<TypedBuf, Payload> {
        if self.is_view() {
            return Err(self);
        }
        let Payload { repr, start, len } = self;
        match repr {
            Repr::Typed(arc) => Arc::try_unwrap(arc).map_err(|arc| Payload {
                repr: Repr::Typed(arc),
                start,
                len,
            }),
            wire @ Repr::Wire { .. } => Err(Payload {
                repr: wire,
                start,
                len,
            }),
        }
    }

    /// Make `self` a uniquely-owned full-range typed payload and return
    /// the buffer mutably. In place when already unique/full/typed;
    /// otherwise materializes exactly this payload's range.
    pub fn to_mut(&mut self) -> &mut TypedBuf {
        let needs_copy = self.is_view()
            || match &self.repr {
                Repr::Typed(arc) => Arc::strong_count(arc) > 1,
                Repr::Wire { .. } => true,
            };
        if needs_copy {
            *self = Payload::new(self.to_buf());
        }
        match &mut self.repr {
            Repr::Typed(arc) => Arc::get_mut(arc).expect("uniquely owned after materialize"),
            Repr::Wire { .. } => unreachable!("materialized to typed above"),
        }
    }

    /// Elementwise `self = self ⊕ src` under `op`.
    ///
    /// A uniquely-owned full-range typed destination (the steady-state
    /// reduction accumulator) mutates in place. A shared, viewed, or
    /// wire-borne *source* folds in without materializing. When the
    /// destination itself needs copy-on-write (it was cloned onto the
    /// wire and a sharer is still in flight), the old materialize-then-
    /// fold is fused into one `out[i] = dst[i] ⊕ src[i]` pass
    /// ([`TypedBuf::fill_combine`]) — same bits, half the memory traffic.
    pub fn reduce_assign(&mut self, src: &Payload, op: ReduceOp) -> Result<(), BufError> {
        self.reduce_assign_pooled(src, op, &mut Vec::new())
    }

    /// [`Payload::reduce_assign`] drawing any copy-on-write destination
    /// buffer from a recycle pool: when the fused path needs a fresh
    /// output buffer, a shape-matching pool entry is popped and fully
    /// overwritten instead of allocating. With a balanced pool (the
    /// engine harvests completed instances back into it) the steady-state
    /// combine allocates nothing.
    pub fn reduce_assign_pooled(
        &mut self,
        src: &Payload,
        op: ReduceOp,
        pool: &mut Vec<TypedBuf>,
    ) -> Result<(), BufError> {
        if self.dtype() != src.dtype() {
            return Err(BufError::DTypeMismatch {
                expected: self.dtype(),
                got: src.dtype(),
            });
        }
        if self.len != src.len {
            return Err(BufError::LenMismatch {
                expected: self.len,
                got: src.len,
            });
        }
        let in_place = !self.is_view()
            && matches!(&self.repr, Repr::Typed(arc) if Arc::strong_count(arc) == 1);
        if in_place {
            let Repr::Typed(arc) = &mut self.repr else {
                unreachable!("checked typed above");
            };
            let dst = Arc::get_mut(arc).expect("uniquely owned");
            return match &src.repr {
                Repr::Typed(b) => dst.combine_offset(b, src.start, op),
                Repr::Wire { .. } => {
                    let (_, raw) = src.wire_range().expect("wire repr");
                    dst.combine_le_bytes(raw, op)
                }
            };
        }
        match &self.repr {
            // Shared or viewed typed destination: fused single pass into a
            // recycled (or zero-page-fresh) buffer. The old allocation is
            // released to its remaining sharers untouched.
            Repr::Typed(a) => {
                let mut out = take_matching(pool, self.dtype(), self.len)
                    .unwrap_or_else(|| TypedBuf::zeros(self.dtype(), self.len));
                match &src.repr {
                    Repr::Typed(b) => out.fill_combine(a, self.start, b, src.start, op)?,
                    Repr::Wire { .. } => {
                        let (_, raw) = src.wire_range().expect("wire repr");
                        out.fill_combine_le_bytes(a, self.start, raw, op)?
                    }
                }
                *self = Payload::new(out);
                Ok(())
            }
            // Wire-borne destination (an accumulator never starts life on
            // the wire in any schedule we build): decode, then fold.
            Repr::Wire { .. } => {
                let dst = self.to_mut();
                match &src.repr {
                    Repr::Typed(b) => dst.combine_offset(b, src.start, op),
                    Repr::Wire { .. } => {
                        let (_, raw) = src.wire_range().expect("wire repr");
                        dst.combine_le_bytes(raw, op)
                    }
                }
            }
        }
    }

    /// Write this payload's elements into `dst[dst_start ..]` (the
    /// segmented allgather's assembly step). Decodes wire bytes directly
    /// into the destination range.
    pub fn copy_into_at(&self, dst: &mut TypedBuf, dst_start: usize) -> Result<(), BufError> {
        match &self.repr {
            Repr::Typed(b) => dst.copy_from_at(dst_start, b, self.start, self.len),
            Repr::Wire { .. } => {
                let (dtype, raw) = self.wire_range().expect("wire repr");
                if dst.dtype() != dtype {
                    return Err(BufError::DTypeMismatch {
                        expected: dst.dtype(),
                        got: dtype,
                    });
                }
                dst.write_le_bytes_at(dst_start, raw)
            }
        }
    }

    /// Fold this payload into a bare `f32` slice (the direct ring
    /// algorithms' accumulator). Errors on dtype/length mismatch.
    pub fn reduce_into_f32(&self, dst: &mut [f32], op: ReduceOp) -> Result<(), BufError> {
        if self.dtype() != DType::F32 {
            return Err(BufError::DTypeMismatch {
                expected: DType::F32,
                got: self.dtype(),
            });
        }
        if self.len != dst.len() {
            return Err(BufError::LenMismatch {
                expected: dst.len(),
                got: self.len,
            });
        }
        match &self.repr {
            Repr::Typed(_) => {
                crate::buf::reduce_f32_slices(dst, self.as_f32().expect("f32 typed"), op)
            }
            Repr::Wire { .. } => {
                let (_, raw) = self.wire_range().expect("wire repr");
                crate::buf::reduce_f32_from_le_bytes(dst, raw, op);
            }
        }
        Ok(())
    }

    /// Copy this payload into a bare `f32` slice (allgather hops write,
    /// they do not reduce).
    pub fn copy_into_f32(&self, dst: &mut [f32]) -> Result<(), BufError> {
        if self.dtype() != DType::F32 {
            return Err(BufError::DTypeMismatch {
                expected: DType::F32,
                got: self.dtype(),
            });
        }
        if self.len != dst.len() {
            return Err(BufError::LenMismatch {
                expected: dst.len(),
                got: self.len,
            });
        }
        match &self.repr {
            Repr::Typed(_) => dst.copy_from_slice(self.as_f32().expect("f32 typed")),
            Repr::Wire { .. } => {
                let (_, raw) = self.wire_range().expect("wire repr");
                crate::buf::write_f32_from_le_bytes(dst, raw);
            }
        }
        Ok(())
    }

    /// Append this payload's range as little-endian wire bytes — the TCP
    /// framing path. A wire-borne payload (zero-copy forwarding of a
    /// received chunk) is a straight memcpy; a typed view encodes only
    /// its range.
    pub fn extend_wire_bytes(&self, out: &mut Vec<u8>) {
        match &self.repr {
            Repr::Typed(b) => b.extend_le_bytes_range(self.start, self.len, out),
            Repr::Wire { .. } => {
                let (_, raw) = self.wire_range().expect("wire repr");
                out.extend_from_slice(raw);
            }
        }
    }

    /// Number of live clones sharing this allocation (diagnostics).
    pub fn ref_count(&self) -> usize {
        match &self.repr {
            Repr::Typed(arc) => Arc::strong_count(arc),
            Repr::Wire { bytes, .. } => Arc::strong_count(bytes),
        }
    }

    /// True if `self` and `other` share the same allocation (the
    /// zero-copy invariant tests assert).
    pub fn shares_allocation_with(&self, other: &Payload) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Typed(a), Repr::Typed(b)) => Arc::ptr_eq(a, b),
            (Repr::Wire { bytes: a, .. }, Repr::Wire { bytes: b, .. }) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Pop a buffer with exactly matching shape from a recycle pool.
fn take_matching(pool: &mut Vec<TypedBuf>, dtype: DType, len: usize) -> Option<TypedBuf> {
    let i = pool
        .iter()
        .position(|b| b.dtype() == dtype && b.len() == len)?;
    Some(pool.swap_remove(i))
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality first: shared clones compare without a walk.
        if self.shares_allocation_with(other) && self.start == other.start && self.len == other.len
        {
            return true;
        }
        if self.dtype() != other.dtype() || self.len != other.len {
            return false;
        }
        // Typed payloads compare their ranges in place; only a
        // wire-borne side pays for a decode.
        if let (Repr::Typed(_), Repr::Typed(_)) = (&self.repr, &other.repr) {
            return match self.dtype() {
                DType::F32 => self.as_f32() == other.as_f32(),
                DType::F64 => self.as_f64() == other.as_f64(),
                DType::I32 => self.as_i32() == other.as_i32(),
                DType::I64 => self.as_i64() == other.as_i64(),
            };
        }
        self.to_buf() == other.to_buf()
    }
}

impl PartialEq<TypedBuf> for Payload {
    fn eq(&self, other: &TypedBuf) -> bool {
        self.dtype() == other.dtype() && self.len == other.len() && self.to_buf() == *other
    }
}

impl From<TypedBuf> for Payload {
    fn from(buf: TypedBuf) -> Self {
        Payload::new(buf)
    }
}

impl serde::Serialize for Payload {
    fn to_value(&self) -> serde::json::Value {
        self.to_buf().to_value()
    }
}

impl serde::Deserialize for Payload {
    fn from_value(v: &serde::json::Value) -> Result<Self, serde::json::Error> {
        TypedBuf::from_value(v).map(Payload::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = Payload::new(TypedBuf::from(vec![1.0f32; 1024]));
        let b = a.clone();
        assert!(a.shares_allocation_with(&b));
        assert_eq!(a.ref_count(), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn to_mut_is_in_place_when_unique() {
        let mut a = Payload::new(TypedBuf::from(vec![1.0f32, 2.0]));
        let before = a.as_f32().unwrap().as_ptr();
        a.to_mut().scale(2.0);
        assert_eq!(a.as_f32().unwrap(), &[2.0, 4.0]);
        assert_eq!(
            a.as_f32().unwrap().as_ptr(),
            before,
            "unique owner must mutate in place"
        );
    }

    #[test]
    fn to_mut_copies_only_when_shared() {
        let mut a = Payload::new(TypedBuf::from(vec![1.0f32, 2.0]));
        let b = a.clone();
        a.to_mut().scale(10.0);
        assert_eq!(a.as_f32().unwrap(), &[10.0, 20.0]);
        assert_eq!(b.as_f32().unwrap(), &[1.0, 2.0], "sharers unharmed");
        assert!(!a.shares_allocation_with(&b));
    }

    #[test]
    fn into_buf_is_free_for_the_last_owner() {
        let a = Payload::new(TypedBuf::from(vec![7i64; 8]));
        let ptr = a.as_i64().unwrap().as_ptr();
        let owned = a.into_buf();
        assert_eq!(owned.as_i64().unwrap().as_ptr(), ptr, "no copy");
    }

    #[test]
    fn view_is_a_refcount_bump_with_narrowed_range() {
        let a = Payload::new(TypedBuf::from((0..8).map(|i| i as f32).collect::<Vec<_>>()));
        let v = a.view(2, 3);
        assert!(v.shares_allocation_with(&a), "views share the allocation");
        assert_eq!(a.ref_count(), 2);
        assert_eq!(v.len(), 3);
        assert_eq!(v.byte_len(), 12);
        assert!(v.is_view() && !a.is_view());
        assert_eq!(v.as_f32().unwrap(), &[2.0, 3.0, 4.0]);
        // Views of views compose.
        let vv = v.view(1, 2);
        assert_eq!(vv.as_f32().unwrap(), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds payload")]
    fn out_of_range_view_panics() {
        let a = Payload::new(TypedBuf::from(vec![0.0f32; 4]));
        let _ = a.view(2, 3);
    }

    #[test]
    fn wire_payload_exposes_shape_and_decodes_lazily() {
        let src = TypedBuf::from(vec![1.5f32, -2.0, 3.25]);
        let mut raw = Vec::new();
        src.extend_le_bytes(&mut raw);
        let w = Payload::from_wire(DType::F32, raw).unwrap();
        assert!(w.is_wire());
        assert_eq!(w.dtype(), DType::F32);
        assert_eq!(w.len(), 3);
        assert_eq!(w.byte_len(), 12);
        assert!(w.as_f32().is_none(), "wire bytes are not reinterpreted");
        assert_eq!(w.to_buf(), src);
        // Ragged byte counts are rejected.
        assert!(Payload::from_wire(DType::F64, vec![0u8; 12]).is_none());
    }

    #[test]
    fn reduce_assign_folds_typed_views_and_wire_bytes() {
        for wire in [false, true] {
            let src = TypedBuf::from(vec![10.0f32, 20.0, 30.0, 40.0]);
            let src_p = if wire {
                let mut raw = Vec::new();
                src.extend_le_bytes(&mut raw);
                Payload::from_wire(DType::F32, raw).unwrap()
            } else {
                Payload::new(src)
            };
            let mut acc = Payload::new(TypedBuf::from(vec![1.0f32, 2.0]));
            acc.reduce_assign(&src_p.view(1, 2), ReduceOp::Sum).unwrap();
            assert_eq!(acc.as_f32().unwrap(), &[21.0, 32.0], "wire={wire}");
        }
    }

    #[test]
    fn reduce_assign_materializes_only_the_viewed_range() {
        let base = Payload::new(TypedBuf::from(vec![0.0f32; 1024]));
        let mut chunk = base.view(512, 16);
        chunk
            .reduce_assign(
                &Payload::new(TypedBuf::from(vec![1.0f32; 16])),
                ReduceOp::Sum,
            )
            .unwrap();
        assert_eq!(chunk.len(), 16);
        assert!(!chunk.shares_allocation_with(&base), "copy-on-write");
        assert_eq!(chunk.as_f32().unwrap(), &[1.0; 16]);
        assert_eq!(base.as_f32().unwrap()[512], 0.0, "base unharmed");
    }

    #[test]
    fn copy_into_at_writes_typed_and_wire_sources() {
        let src = TypedBuf::from(vec![5.0f32, 6.0]);
        let mut raw = Vec::new();
        src.extend_le_bytes(&mut raw);
        for p in [
            Payload::new(src.clone()),
            Payload::from_wire(DType::F32, raw).unwrap(),
        ] {
            let mut dst = TypedBuf::zeros(DType::F32, 5);
            p.copy_into_at(&mut dst, 2).unwrap();
            assert_eq!(dst.as_f32().unwrap(), &[0.0, 0.0, 5.0, 6.0, 0.0]);
        }
    }

    #[test]
    fn f32_slice_paths_reduce_and_copy_from_both_reprs() {
        let src = TypedBuf::from(vec![2.0f32, 4.0]);
        let mut raw = Vec::new();
        src.extend_le_bytes(&mut raw);
        for p in [
            Payload::new(src.clone()),
            Payload::from_wire(DType::F32, raw).unwrap(),
        ] {
            let mut acc = [1.0f32, 1.0];
            p.reduce_into_f32(&mut acc, ReduceOp::Sum).unwrap();
            assert_eq!(acc, [3.0, 5.0]);
            let mut out = [0.0f32; 2];
            p.copy_into_f32(&mut out).unwrap();
            assert_eq!(out, [2.0, 4.0]);
        }
        // Shape errors are reported, not panicked.
        let p = Payload::new(TypedBuf::from(vec![1i32]));
        assert!(p.reduce_into_f32(&mut [0.0], ReduceOp::Sum).is_err());
    }

    #[test]
    fn extend_wire_bytes_round_trips_views_and_wire() {
        let src = TypedBuf::from((0..6).map(|i| i as f32).collect::<Vec<_>>());
        let p = Payload::new(src.clone());
        let v = p.view(2, 3);
        let mut enc = Vec::new();
        v.extend_wire_bytes(&mut enc);
        assert_eq!(enc.len(), 12, "only the view range is encoded");
        let back = Payload::from_wire(DType::F32, enc).unwrap();
        assert_eq!(back.to_buf(), src.slice_buf(2, 3));
        // Wire → wire forwarding is a byte copy of the same range.
        let mut enc2 = Vec::new();
        back.extend_wire_bytes(&mut enc2);
        let mut want = Vec::new();
        src.extend_le_bytes_range(2, 3, &mut want);
        assert_eq!(enc2, want);
    }

    #[test]
    fn owned_range_detaches_from_the_source() {
        let a = Payload::new(TypedBuf::from(vec![9.0f32; 8]));
        let c = a.owned_range(4, 2);
        assert!(!c.shares_allocation_with(&a));
        assert_eq!(c.as_f32().unwrap(), &[9.0, 9.0]);
        assert!(!c.is_view());
    }
}
