//! Reusable byte-buffer pool for the TCP framing scratch space.
//!
//! The wire codec needs one scratch `Vec<u8>` per socket thread: writers
//! encode each message into it before the syscall, readers read each
//! frame body into it before decoding. Those buffers grow to the largest
//! frame seen and are then reused for every subsequent message, so the
//! steady-state framing path performs zero allocations per message. The
//! pool exists so short-lived socket threads (one pair per connection)
//! hand their warmed-up buffers to their successors instead of dropping
//! the capacity on the floor; hit/miss counters make the reuse rate
//! observable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Upper bound on buffers retained by the pool (beyond that, returned
/// buffers are simply dropped — the pool must never become a leak).
const MAX_POOLED: usize = 32;
/// A returned buffer larger than this is dropped rather than retained,
/// so one pathological frame cannot pin gigabytes.
const MAX_RETAINED_CAPACITY: usize = 64 << 20;

/// A lock-guarded stack of reusable `Vec<u8>` scratch buffers.
#[derive(Debug, Default)]
pub struct BytePool {
    bufs: Mutex<Vec<Vec<u8>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The process-wide pool shared by all frame codec threads.
pub(crate) static FRAME_POOL: BytePool = BytePool::new();

impl BytePool {
    /// An empty pool (const: usable as a `static`).
    pub const fn new() -> Self {
        BytePool {
            bufs: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Take a cleared buffer, reusing a pooled allocation when one exists.
    pub fn get(&self) -> Vec<u8> {
        let pooled = self.bufs.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match pooled {
            Some(mut v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                v.clear();
                v
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Return a buffer for reuse (dropped if the pool is full or the
    /// buffer grew past the retention bound).
    pub fn put(&self, v: Vec<u8>) {
        if v.capacity() == 0 || v.capacity() > MAX_RETAINED_CAPACITY {
            return;
        }
        let mut bufs = self.bufs.lock().unwrap_or_else(|e| e.into_inner());
        if bufs.len() < MAX_POOLED {
            bufs.push(v);
        }
    }

    /// `(hits, misses)` since process start.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_reuses_capacity() {
        let pool = BytePool::new();
        let mut v = pool.get();
        v.extend_from_slice(&[1u8; 4096]);
        let ptr = v.as_ptr();
        pool.put(v);
        let v2 = pool.get();
        assert!(v2.is_empty(), "pooled buffers come back cleared");
        assert!(v2.capacity() >= 4096);
        assert_eq!(v2.as_ptr(), ptr, "same allocation reused");
        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let pool = BytePool::new();
        pool.put(Vec::new());
        let _ = pool.get();
        let (hits, _) = pool.stats();
        assert_eq!(hits, 0);
    }

    #[test]
    fn pool_caps_retained_buffers() {
        let pool = BytePool::new();
        for _ in 0..(MAX_POOLED + 8) {
            pool.put(vec![0u8; 16]);
        }
        let retained = pool.bufs.lock().unwrap().len();
        assert!(retained <= MAX_POOLED);
    }
}
