//! Network latency model and the delivery thread.
//!
//! Messages optionally pass through a "network" thread that holds them
//! until their modeled delivery time: `alpha + wire_bytes * beta +
//! jitter`. Delivery preserves FIFO per (src, dst) pair — the MPI
//! non-overtaking rule — by clamping each message's delivery time to be no
//! earlier than the previous message on the same pair.
//!
//! Delivery is transport-agnostic: due messages are released through a
//! `Route`, which is either the in-process mailbox table or the TCP
//! backend's per-peer socket writers (see `transport`). Under the
//! in-process backend one shared thread shapes all traffic; under TCP
//! each rank process runs its own sender-side shaper, which preserves the
//! same per-pair ordering guarantee because a pair's messages all pass
//! through the source rank's thread and then one ordered connection.
//!
//! With [`NetworkModel::Instant`] the delivery thread is bypassed entirely
//! and senders push straight into the route (lowest overhead; the default
//! for unit tests).

use crate::sim::Planet;
use crate::stats::CommStats;
use crate::tag::{Message, Rank};
use crate::transport::{bounded_send, Route};
use crate::world::Envelope;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency model applied to every message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetworkModel {
    /// Zero modeled latency; direct handoff to the destination mailbox.
    Instant,
    /// First-order alpha-beta (LogP-flavoured) model with uniform jitter.
    AlphaBeta {
        /// Per-message base latency.
        alpha: Duration,
        /// Transfer cost in nanoseconds per wire byte (1/bandwidth).
        beta_ns_per_byte: f64,
        /// Uniform random extra delay in `[0, jitter]` (system noise, §1).
        jitter: Duration,
    },
}

impl NetworkModel {
    /// An HPC-interconnect-flavoured model (µs-scale alpha, ~10 GiB/s).
    pub fn hpc() -> Self {
        NetworkModel::AlphaBeta {
            alpha: Duration::from_micros(25),
            beta_ns_per_byte: 0.1,
            jitter: Duration::from_micros(5),
        }
    }

    /// A cloud-Ethernet-flavoured model (higher alpha, ~1 GiB/s, jittery).
    pub fn cloud() -> Self {
        NetworkModel::AlphaBeta {
            alpha: Duration::from_micros(150),
            beta_ns_per_byte: 1.0,
            jitter: Duration::from_micros(100),
        }
    }

    /// Latency charged to a message of `bytes` wire bytes, excluding jitter.
    pub fn base_latency(&self, bytes: usize) -> Duration {
        match self {
            NetworkModel::Instant => Duration::ZERO,
            NetworkModel::AlphaBeta {
                alpha,
                beta_ns_per_byte,
                ..
            } => *alpha + Duration::from_nanos((bytes as f64 * beta_ns_per_byte) as u64),
        }
    }

    fn jitter(&self) -> Duration {
        match self {
            NetworkModel::Instant => Duration::ZERO,
            NetworkModel::AlphaBeta { jitter, .. } => *jitter,
        }
    }
}

/// A message in flight, ordered by delivery deadline (then by sequence
/// number so the heap is a stable queue).
struct InFlight {
    due: Instant,
    seq: u64,
    dst: Rank,
    msg: Message,
    /// When the shaper accepted the message — `due - sent` is the full
    /// modeled hold (latency plus any non-overtaking clamp), reported in
    /// the shaper's `NetRelease` trace events.
    sent: Instant,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

pub(crate) enum NetCmd {
    Send { dst: Rank, msg: Message },
    Shutdown,
}

/// Precomputed per-pair extra latency from a [`Planet`]'s region matrix —
/// the co-simulation hook: `Transport::Sim` closure worlds run the normal
/// wall-clock shaper with the planet's geography added to every message.
pub(crate) struct ExtraLatency {
    p: usize,
    table: Vec<Duration>,
}

impl ExtraLatency {
    pub(crate) fn from_planet(planet: &Planet, p: usize) -> ExtraLatency {
        let table = (0..p * p)
            .map(|i| planet.one_way(planet.rank_region(i / p, p), planet.rank_region(i % p, p)))
            .collect();
        ExtraLatency { p, table }
    }

    fn get(&self, src: Rank, dst: Rank) -> Duration {
        self.table[src * self.p + dst]
    }
}

/// Runs the delivery loop: accept sends, hold them until due, release
/// through the route. A deterministic xorshift PRNG provides jitter
/// (avoids pulling `rand` into the lowest layer).
///
/// On [`NetCmd::Shutdown`] (or sender disconnect) every still-held message
/// is released immediately — teardown drains in-flight traffic rather than
/// dropping it, which is what lets a finishing rank's last sends reach
/// slower peers (the orderly-shutdown contract the TCP backend's goodbye
/// handshake builds on).
pub(crate) fn delivery_loop(
    model: NetworkModel,
    rx: Receiver<NetCmd>,
    route: Route,
    seed: u64,
    stats: Arc<CommStats>,
    queue_deadline: Duration,
    extra: Option<Arc<ExtraLatency>>,
) {
    let mut heap: BinaryHeap<Reverse<InFlight>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    // Last scheduled delivery per (src, dst) to enforce non-overtaking.
    let mut last_due: HashMap<(Rank, Rank), Instant> = HashMap::new();
    let mut rng_state = seed | 1;
    let mut next_jitter = |max: Duration| -> Duration {
        // xorshift64*
        rng_state ^= rng_state >> 12;
        rng_state ^= rng_state << 25;
        rng_state ^= rng_state >> 27;
        let r = rng_state.wrapping_mul(0x2545F4914F6CDD1D);
        let nanos = max.as_nanos() as u64;
        if nanos == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(r % nanos)
        }
    };

    // Drain the heap in due-order (which is also per-pair FIFO order),
    // *honoring* each message's modeled delivery time — used at teardown.
    // Sleeping out the residual delay keeps the two transports
    // comparable: a TCP rank that finishes early must not release its
    // shaped messages ahead of schedule, or peers would see them sooner
    // than the same seeded run delivers them in-process. The wait is
    // bounded by the model's alpha + jitter.
    let flush = |heap: &mut BinaryHeap<Reverse<InFlight>>| {
        let mut rest: Vec<InFlight> = heap.drain().map(|Reverse(f)| f).collect();
        rest.sort_by_key(|f| (f.due, f.seq));
        for inflight in rest {
            let wait = inflight.due.saturating_duration_since(Instant::now());
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
            stats.recorder().record(pcoll_obs::LEVEL_VERBOSE, || {
                pcoll_obs::EventKind::NetRelease {
                    dst: inflight.dst as u32,
                    delay_ns: inflight.due.duration_since(inflight.sent).as_nanos() as u64,
                }
            });
            route.deliver(
                inflight.dst,
                Envelope::Data(inflight.msg),
                &stats,
                queue_deadline,
            );
        }
    };

    loop {
        // Release everything that is due.
        let now = Instant::now();
        while let Some(Reverse(top)) = heap.peek() {
            if top.due > now {
                break;
            }
            let Reverse(inflight) = heap.pop().expect("peeked");
            // A closed route means the rank already finished; the message
            // is dropped, as a real network drops packets to dead hosts.
            // A *full* route blocks here — the shaper is the backpressure
            // relay between a fast sender and a slow destination queue.
            stats.recorder().record(pcoll_obs::LEVEL_VERBOSE, || {
                pcoll_obs::EventKind::NetRelease {
                    dst: inflight.dst as u32,
                    delay_ns: inflight.due.duration_since(inflight.sent).as_nanos() as u64,
                }
            });
            route.deliver(
                inflight.dst,
                Envelope::Data(inflight.msg),
                &stats,
                queue_deadline,
            );
        }

        // Wait for new work until the next deadline (or indefinitely).
        let cmd = match heap.peek() {
            Some(Reverse(top)) => {
                let timeout = top.due.saturating_duration_since(Instant::now());
                match rx.recv_timeout(timeout) {
                    Ok(c) => Some(c),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => return flush(&mut heap),
                }
            }
            None => match rx.recv() {
                Ok(c) => Some(c),
                Err(_) => return,
            },
        };

        match cmd {
            Some(NetCmd::Send { dst, msg }) => {
                let geography = extra
                    .as_ref()
                    .map_or(Duration::ZERO, |e| e.get(msg.src, dst));
                let latency =
                    geography + model.base_latency(msg.wire_bytes()) + next_jitter(model.jitter());
                let sent = Instant::now();
                let mut due = sent + latency;
                let key = (msg.src, dst);
                if let Some(prev) = last_due.get(&key) {
                    if *prev > due {
                        due = *prev;
                    }
                }
                last_due.insert(key, due);
                heap.push(Reverse(InFlight {
                    due,
                    seq,
                    dst,
                    msg,
                    sent,
                }));
                seq += 1;
            }
            Some(NetCmd::Shutdown) => return flush(&mut heap),
            None => {} // timeout: loop back and release due messages
        }
    }
}

/// Handle for pushing messages into the delivery thread. The shaper's
/// inbox is itself a bounded queue: senders that outrun it block, so
/// backpressure propagates through the modeled network rather than
/// pooling behind it.
#[derive(Clone)]
pub(crate) struct NetHandle {
    pub(crate) tx: Sender<NetCmd>,
}

impl NetHandle {
    /// Queue a message for shaping, accounting queue pressure to the
    /// sending rank's `stats`.
    pub(crate) fn send(&self, dst: Rank, msg: Message, stats: &CommStats, deadline: Duration) {
        bounded_send(
            &self.tx,
            NetCmd::Send { dst, msg },
            stats,
            deadline,
            "network shaper",
        );
    }

    /// Request an orderly drain (blocking; teardown control traffic).
    pub(crate) fn shutdown(&self) {
        let _ = self.tx.send(NetCmd::Shutdown);
    }
}

pub(crate) fn spawn_network(
    model: NetworkModel,
    route: Route,
    seed: u64,
    queue_capacity: usize,
    queue_deadline: Duration,
    stats: Arc<CommStats>,
    extra: Option<Arc<ExtraLatency>>,
) -> (NetHandle, std::thread::JoinHandle<()>) {
    let (tx, rx) = bounded(queue_capacity);
    let join = std::thread::Builder::new()
        .name("pcoll-net".into())
        .spawn(move || delivery_loop(model, rx, route, seed, stats, queue_deadline, extra))
        .expect("spawn network thread");
    (NetHandle { tx }, join)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::{CollId, WireTag};
    use crate::TypedBuf;

    fn msg(src: Rank, sem: u32, val: f32) -> Message {
        Message {
            src,
            tag: WireTag::new(CollId(0), 0, sem),
            payload: Some(TypedBuf::from(vec![val]).into()),
        }
    }

    fn test_network(
        model: NetworkModel,
        seed: u64,
    ) -> (
        NetHandle,
        std::thread::JoinHandle<()>,
        Receiver<Envelope>,
        Arc<CommStats>,
    ) {
        let (mb_tx, mb_rx) = bounded(1024);
        let stats = Arc::new(CommStats::default());
        let (net, join) = spawn_network(
            model,
            Route::mailboxes(vec![mb_tx]),
            seed,
            1024,
            Duration::from_secs(10),
            Arc::clone(&stats),
            None,
        );
        (net, join, mb_rx, stats)
    }

    #[test]
    fn instant_model_has_zero_latency() {
        assert_eq!(NetworkModel::Instant.base_latency(1 << 20), Duration::ZERO);
    }

    #[test]
    fn alpha_beta_latency_grows_with_size() {
        let m = NetworkModel::hpc();
        assert!(m.base_latency(1 << 22) > m.base_latency(64));
    }

    #[test]
    fn delivery_preserves_pairwise_fifo() {
        // High jitter would reorder without the non-overtaking clamp.
        let model = NetworkModel::AlphaBeta {
            alpha: Duration::from_micros(10),
            beta_ns_per_byte: 0.0,
            jitter: Duration::from_millis(2),
        };
        let (net, join, mb_rx, stats) = test_network(model, 42);
        for i in 0..64 {
            net.send(0, msg(0, i, i as f32), &stats, Duration::from_secs(5));
        }
        let mut got = Vec::new();
        for _ in 0..64 {
            match mb_rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                Envelope::Data(m) => got.push(m.tag.sem),
                _ => panic!("unexpected envelope"),
            }
        }
        let want: Vec<u32> = (0..64).collect();
        assert_eq!(got, want, "same-pair messages must not overtake");
        net.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn delivery_delays_at_least_alpha() {
        let model = NetworkModel::AlphaBeta {
            alpha: Duration::from_millis(5),
            beta_ns_per_byte: 0.0,
            jitter: Duration::ZERO,
        };
        let (net, join, mb_rx, stats) = test_network(model, 1);
        let t0 = Instant::now();
        net.send(0, msg(0, 0, 1.0), &stats, Duration::from_secs(5));
        let _ = mb_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
        net.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn shutdown_drains_held_messages_in_order_and_on_time() {
        // Alpha holds everything in the heap at shutdown; the drain must
        // deliver all of it, in per-pair order, and no earlier than the
        // modeled delivery time.
        let model = NetworkModel::AlphaBeta {
            alpha: Duration::from_millis(30),
            beta_ns_per_byte: 0.0,
            jitter: Duration::ZERO,
        };
        let (net, join, mb_rx, stats) = test_network(model, 9);
        let t0 = Instant::now();
        for i in 0..16 {
            net.send(0, msg(0, i, i as f32), &stats, Duration::from_secs(5));
        }
        net.shutdown();
        join.join().unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(30),
            "drain must honor modeled latency, not release early"
        );
        let mut got = Vec::new();
        while let Ok(Envelope::Data(m)) = mb_rx.try_recv() {
            got.push(m.tag.sem);
        }
        let want: Vec<u32> = (0..16).collect();
        assert_eq!(got, want, "teardown must drain, not drop");
    }
}
