//! Queue-pressure counters for the bounded send routes.
//!
//! Every bounded queue push (rank mailboxes, the network shaper's inbox,
//! the TCP per-peer writer queues) is accounted here: how many sends went
//! through, how many found the queue full and had to block, how long they
//! blocked, and the deepest backlog observed. One [`CommStats`] lives per
//! rank (shared by its `CommHandle` clones and, under TCP, its shaper
//! thread); the adaptive-quorum layer snapshots it per decision window
//! and exports the deltas onto the `pcoll_tune` telemetry bus so the
//! controller can see congestion, not just skew.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic queue-pressure counters (lock-free; hot-path updates are
/// relaxed atomics).
#[derive(Debug, Default)]
pub struct CommStats {
    /// Messages pushed into any bounded send queue.
    pub sends: AtomicU64,
    /// Payload bytes handed to the transport by this rank's sends
    /// (control messages count zero). Telemetry consumers (the
    /// `coll_micro` bench, the tune bus's `Queue` events) divide deltas
    /// of this by wall time to report *achieved* wire bandwidth per
    /// algorithm instead of inferring it from message counts.
    pub bytes_sent: AtomicU64,
    /// Sends that found their queue full and blocked for space.
    pub send_stalls: AtomicU64,
    /// Total nanoseconds spent blocked on full queues.
    pub stall_ns: AtomicU64,
    /// Deepest queue backlog observed immediately after a push.
    pub peak_queue_depth: AtomicU64,
    /// Sends dropped because the destination had already finished.
    pub dropped_closed: AtomicU64,
}

impl CommStats {
    /// Record the backlog seen after a push (monotonic max).
    pub(crate) fn record_depth(&self, depth: usize) {
        self.peak_queue_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Drain the running queue-depth maximum: returns the deepest backlog
    /// observed since the previous call and resets the gauge, so periodic
    /// callers (the tuner's per-step telemetry) get *windowed* peaks
    /// instead of an all-time high-water mark that never decays.
    pub fn take_peak_queue_depth(&self) -> u64 {
        self.peak_queue_depth.swap(0, Ordering::Relaxed)
    }

    /// Read every counter at once.
    pub fn snapshot(&self) -> CommStatsSnapshot {
        CommStatsSnapshot {
            sends: self.sends.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            send_stalls: self.send_stalls.load(Ordering::Relaxed),
            stall_ms: self.stall_ns.load(Ordering::Relaxed) as f64 / 1e6,
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            dropped_closed: self.dropped_closed.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`CommStats`], serializable for telemetry and
/// bench artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStatsSnapshot {
    /// Messages handed to a send route.
    pub sends: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Sends that found their queue full and had to block.
    pub send_stalls: u64,
    /// Total time spent blocked on full queues.
    pub stall_ms: f64,
    /// Deepest queue backlog observed (running max).
    pub peak_queue_depth: u64,
    /// Messages dropped because the destination had already finished.
    pub dropped_closed: u64,
}

impl CommStatsSnapshot {
    /// Counter deltas since `earlier` (peak depth is a running max, so it
    /// carries over as-is).
    pub fn since(&self, earlier: &CommStatsSnapshot) -> CommStatsSnapshot {
        CommStatsSnapshot {
            sends: self.sends.saturating_sub(earlier.sends),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            send_stalls: self.send_stalls.saturating_sub(earlier.send_stalls),
            stall_ms: (self.stall_ms - earlier.stall_ms).max(0.0),
            peak_queue_depth: self.peak_queue_depth,
            dropped_closed: self.dropped_closed.saturating_sub(earlier.dropped_closed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_all_counters() {
        let s = CommStats::default();
        s.sends.store(10, Ordering::Relaxed);
        s.send_stalls.store(2, Ordering::Relaxed);
        s.stall_ns.store(3_000_000, Ordering::Relaxed);
        s.record_depth(7);
        s.record_depth(4); // max, not last
        let snap = s.snapshot();
        assert_eq!(snap.sends, 10);
        assert_eq!(snap.send_stalls, 2);
        assert!((snap.stall_ms - 3.0).abs() < 1e-9);
        assert_eq!(snap.peak_queue_depth, 7);
    }

    #[test]
    fn take_peak_queue_depth_drains_the_gauge() {
        let s = CommStats::default();
        s.record_depth(9);
        s.record_depth(5);
        assert_eq!(s.take_peak_queue_depth(), 9);
        assert_eq!(s.take_peak_queue_depth(), 0, "gauge resets per window");
        s.record_depth(2);
        assert_eq!(s.take_peak_queue_depth(), 2);
    }

    #[test]
    fn since_subtracts_monotonic_counters() {
        let a = CommStatsSnapshot {
            sends: 5,
            bytes_sent: 100,
            send_stalls: 1,
            stall_ms: 1.0,
            peak_queue_depth: 3,
            dropped_closed: 0,
        };
        let b = CommStatsSnapshot {
            sends: 9,
            bytes_sent: 260,
            send_stalls: 4,
            stall_ms: 2.5,
            peak_queue_depth: 6,
            dropped_closed: 1,
        };
        let d = b.since(&a);
        assert_eq!(d.sends, 4);
        assert_eq!(d.bytes_sent, 160);
        assert_eq!(d.send_stalls, 3);
        assert!((d.stall_ms - 1.5).abs() < 1e-9);
        assert_eq!(d.peak_queue_depth, 6, "peak carries over");
        assert_eq!(d.dropped_closed, 1);
    }

    #[test]
    fn snapshots_serialize_to_json() {
        let snap = CommStats::default().snapshot();
        let s = serde_json::to_string(&snap).unwrap();
        let back: CommStatsSnapshot = serde_json::from_str(&s).unwrap();
        assert_eq!(back, snap);
    }
}
