//! Queue-pressure counters for the bounded send routes.
//!
//! Every bounded queue push (rank mailboxes, the network shaper's inbox,
//! the TCP per-peer writer queues) is accounted here: how many sends went
//! through, how many found the queue full and had to block, how long they
//! blocked, and the deepest backlog observed. One [`CommStats`] lives per
//! rank (shared by its `CommHandle` clones and, under TCP, its shaper
//! thread); the adaptive-quorum layer snapshots it per decision window
//! and exports the deltas onto the `pcoll_tune` telemetry bus so the
//! controller can see congestion, not just skew.

use pcoll_obs::Recorder;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic queue-pressure counters (lock-free; hot-path updates are
/// relaxed atomics). Also carries the rank's flight-[`Recorder`] handle,
/// since every bounded-queue hot path already threads `&CommStats` —
/// the recorder rides along for free.
#[derive(Debug, Default)]
pub struct CommStats {
    /// Messages pushed into any bounded send queue.
    pub sends: AtomicU64,
    /// Payload bytes handed to the transport by this rank's sends
    /// (control messages count zero). Telemetry consumers (the
    /// `coll_micro` bench, the tune bus's `Queue` events) divide deltas
    /// of this by wall time to report *achieved* wire bandwidth per
    /// algorithm instead of inferring it from message counts.
    pub bytes_sent: AtomicU64,
    /// Data messages this rank's receive paths consumed (the matcher's
    /// `recv_*` family, the engine's envelope intake, the TCP reader).
    pub recvs: AtomicU64,
    /// Payload bytes received (mirror of `bytes_sent`; control messages
    /// count zero). Together with `recvs` this makes congestion visible
    /// from the *receiver*, not just the sender.
    pub bytes_received: AtomicU64,
    /// Sends that found their queue full and blocked for space.
    pub send_stalls: AtomicU64,
    /// Total nanoseconds spent blocked on full queues.
    pub stall_ns: AtomicU64,
    /// Deepest queue backlog observed immediately after a push.
    pub peak_queue_depth: AtomicU64,
    /// Sends dropped because the destination had already finished.
    pub dropped_closed: AtomicU64,
    /// Sends dropped because the destination was declared down by the
    /// failure detector (distinct from `dropped_closed`: the peer did not
    /// finish, it died — these drops feed the eviction story, not the
    /// orderly-teardown one).
    pub dropped_peer_down: AtomicU64,
    /// Goodbye-handshake drains skipped because the peer was already dead
    /// (teardown must not block on a corpse; each skip is one peer whose
    /// in-flight traffic we gave up waiting for).
    pub drain_skips: AtomicU64,
    /// Heartbeat frames sent on otherwise-idle links (TCP only; the
    /// membership layer's keep-alive traffic, never delivered upward).
    pub heartbeats: AtomicU64,
    /// The rank's flight recorder (disabled by default: recording into
    /// it is a no-op costing one `Option` check).
    recorder: Recorder,
}

impl CommStats {
    /// Counters at zero with an attached flight recorder.
    pub fn with_recorder(recorder: Recorder) -> CommStats {
        CommStats {
            recorder,
            ..CommStats::default()
        }
    }

    /// The rank's flight-recorder handle.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Record the backlog seen after a push (monotonic max).
    pub(crate) fn record_depth(&self, depth: usize) {
        self.peak_queue_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Account one consumed data message of `bytes` payload. Public so
    /// the scheduler's envelope intake (a different crate) can count the
    /// receives it consumes without going through a matcher.
    pub fn record_recv(&self, bytes: usize) {
        self.recvs.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Drain the running queue-depth maximum: returns the deepest backlog
    /// observed since the previous call and resets the gauge, so periodic
    /// callers (the tuner's per-step telemetry) get *windowed* peaks
    /// instead of an all-time high-water mark that never decays.
    pub fn take_peak_queue_depth(&self) -> u64 {
        self.peak_queue_depth.swap(0, Ordering::Relaxed)
    }

    /// Read every counter at once. The `peak_queue_depth` field is a
    /// *non-destructive* read of the depth gauge: it holds the maximum
    /// since the last [`CommStats::take_peak_queue_depth`] drain, not
    /// since any particular snapshot — windowed peaks come only from
    /// the drain.
    pub fn snapshot(&self) -> CommStatsSnapshot {
        CommStatsSnapshot {
            sends: self.sends.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            recvs: self.recvs.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            send_stalls: self.send_stalls.load(Ordering::Relaxed),
            stall_ms: self.stall_ns.load(Ordering::Relaxed) as f64 / 1e6,
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            dropped_closed: self.dropped_closed.load(Ordering::Relaxed),
            dropped_peer_down: self.dropped_peer_down.load(Ordering::Relaxed),
            drain_skips: self.drain_skips.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
        }
    }

    /// Export every counter into a [`pcoll_obs::MetricsRegistry`] under
    /// `<prefix>_…` names (the unified-telemetry path: one `render()`
    /// shows transport pressure next to round latencies).
    pub fn export_metrics(&self, reg: &pcoll_obs::MetricsRegistry, prefix: &str) {
        let s = self.snapshot();
        reg.counter_add(&format!("{prefix}_sends_total"), s.sends);
        reg.counter_add(&format!("{prefix}_bytes_sent_total"), s.bytes_sent);
        reg.counter_add(&format!("{prefix}_recvs_total"), s.recvs);
        reg.counter_add(&format!("{prefix}_bytes_received_total"), s.bytes_received);
        reg.counter_add(&format!("{prefix}_send_stalls_total"), s.send_stalls);
        reg.counter_add(
            &format!("{prefix}_stall_ns_total"),
            self.stall_ns.load(Ordering::Relaxed),
        );
        reg.counter_add(&format!("{prefix}_dropped_closed_total"), s.dropped_closed);
        reg.counter_add(
            &format!("{prefix}_dropped_peer_down_total"),
            s.dropped_peer_down,
        );
        reg.counter_add(&format!("{prefix}_drain_skips_total"), s.drain_skips);
        reg.counter_add(&format!("{prefix}_heartbeats_total"), s.heartbeats);
        reg.gauge_max(&format!("{prefix}_peak_queue_depth"), s.peak_queue_depth);
    }
}

/// A point-in-time copy of [`CommStats`], serializable for telemetry and
/// bench artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStatsSnapshot {
    /// Messages handed to a send route.
    pub sends: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Data messages consumed by a receive path.
    pub recvs: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Sends that found their queue full and had to block.
    pub send_stalls: u64,
    /// Total time spent blocked on full queues.
    pub stall_ms: f64,
    /// The depth gauge as read at snapshot time: maximum backlog since
    /// the last [`CommStats::take_peak_queue_depth`] drain (see
    /// [`CommStatsSnapshot::since`] for why deltas zero this).
    pub peak_queue_depth: u64,
    /// Messages dropped because the destination had already finished.
    pub dropped_closed: u64,
    /// Messages dropped because the destination was declared down.
    pub dropped_peer_down: u64,
    /// Goodbye drains skipped against already-dead peers.
    pub drain_skips: u64,
    /// Heartbeat frames sent on idle links.
    pub heartbeats: u64,
}

impl CommStatsSnapshot {
    /// Counter deltas since `earlier`. The peak-depth gauge is *not* a
    /// monotonic counter, so no meaningful "peak within this window" can
    /// be derived from two snapshots — historically this field carried
    /// the raw gauge through, which went stale the moment any caller
    /// drained it with [`CommStats::take_peak_queue_depth`]. Deltas now
    /// zero it: the drain is the single windowed-peak path.
    pub fn since(&self, earlier: &CommStatsSnapshot) -> CommStatsSnapshot {
        CommStatsSnapshot {
            sends: self.sends.saturating_sub(earlier.sends),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            recvs: self.recvs.saturating_sub(earlier.recvs),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            send_stalls: self.send_stalls.saturating_sub(earlier.send_stalls),
            stall_ms: (self.stall_ms - earlier.stall_ms).max(0.0),
            peak_queue_depth: 0,
            dropped_closed: self.dropped_closed.saturating_sub(earlier.dropped_closed),
            dropped_peer_down: self
                .dropped_peer_down
                .saturating_sub(earlier.dropped_peer_down),
            drain_skips: self.drain_skips.saturating_sub(earlier.drain_skips),
            heartbeats: self.heartbeats.saturating_sub(earlier.heartbeats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_all_counters() {
        let s = CommStats::default();
        s.sends.store(10, Ordering::Relaxed);
        s.send_stalls.store(2, Ordering::Relaxed);
        s.stall_ns.store(3_000_000, Ordering::Relaxed);
        s.record_depth(7);
        s.record_depth(4); // max, not last
        let snap = s.snapshot();
        assert_eq!(snap.sends, 10);
        assert_eq!(snap.send_stalls, 2);
        assert!((snap.stall_ms - 3.0).abs() < 1e-9);
        assert_eq!(snap.peak_queue_depth, 7);
    }

    #[test]
    fn take_peak_queue_depth_drains_the_gauge() {
        let s = CommStats::default();
        s.record_depth(9);
        s.record_depth(5);
        assert_eq!(s.take_peak_queue_depth(), 9);
        assert_eq!(s.take_peak_queue_depth(), 0, "gauge resets per window");
        s.record_depth(2);
        assert_eq!(s.take_peak_queue_depth(), 2);
    }

    #[test]
    fn since_subtracts_monotonic_counters() {
        let a = CommStatsSnapshot {
            sends: 5,
            bytes_sent: 100,
            recvs: 2,
            bytes_received: 40,
            send_stalls: 1,
            stall_ms: 1.0,
            peak_queue_depth: 3,
            dropped_closed: 0,
            dropped_peer_down: 0,
            drain_skips: 0,
            heartbeats: 2,
        };
        let b = CommStatsSnapshot {
            sends: 9,
            bytes_sent: 260,
            recvs: 7,
            bytes_received: 240,
            send_stalls: 4,
            stall_ms: 2.5,
            peak_queue_depth: 6,
            dropped_closed: 1,
            dropped_peer_down: 2,
            drain_skips: 1,
            heartbeats: 7,
        };
        let d = b.since(&a);
        assert_eq!(d.sends, 4);
        assert_eq!(d.bytes_sent, 160);
        assert_eq!(d.recvs, 5);
        assert_eq!(d.bytes_received, 200);
        assert_eq!(d.send_stalls, 3);
        assert!((d.stall_ms - 1.5).abs() < 1e-9);
        assert_eq!(d.peak_queue_depth, 0, "deltas never report the gauge");
        assert_eq!(d.dropped_closed, 1);
        assert_eq!(d.dropped_peer_down, 2);
        assert_eq!(d.drain_skips, 1);
        assert_eq!(d.heartbeats, 5);
    }

    #[test]
    fn windowed_peak_comes_only_from_the_drain() {
        // Regression for the interleaving bug: a tuner drains the gauge
        // every step while another observer diffs snapshots. The diff
        // must not resurrect the pre-drain running max as if it were
        // this window's peak.
        let s = CommStats::default();
        s.record_depth(9);
        let a = s.snapshot();
        assert_eq!(a.peak_queue_depth, 9, "snapshot reads the gauge as-is");
        assert_eq!(s.take_peak_queue_depth(), 9, "tuner drains its window");
        s.record_depth(3);
        let b = s.snapshot();
        assert_eq!(b.peak_queue_depth, 3, "gauge restarted after the drain");
        let d = b.since(&a);
        assert_eq!(
            d.peak_queue_depth, 0,
            "take_peak_queue_depth is the single windowed-peak path"
        );
    }

    #[test]
    fn record_recv_mirrors_the_send_side() {
        let s = CommStats::default();
        s.record_recv(128);
        s.record_recv(64);
        let snap = s.snapshot();
        assert_eq!(snap.recvs, 2);
        assert_eq!(snap.bytes_received, 192);
    }

    #[test]
    fn export_metrics_lands_in_one_registry() {
        let s = CommStats::default();
        s.sends.store(3, Ordering::Relaxed);
        s.record_recv(50);
        s.record_depth(6);
        let reg = pcoll_obs::MetricsRegistry::default();
        s.export_metrics(&reg, "comm");
        let text = reg.render();
        assert!(text.contains("comm_sends_total 3\n"));
        assert!(text.contains("comm_recvs_total 1\n"));
        assert!(text.contains("comm_bytes_received_total 50\n"));
        assert!(text.contains("comm_peak_queue_depth 6\n"));
    }

    #[test]
    fn snapshots_serialize_to_json() {
        let snap = CommStats::default().snapshot();
        let s = serde_json::to_string(&snap).unwrap();
        let back: CommStatsSnapshot = serde_json::from_str(&s).unwrap();
        assert_eq!(back, snap);
    }
}
