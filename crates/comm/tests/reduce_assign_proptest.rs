//! Property tests for the fused `Payload::reduce_assign` copy-on-write
//! path: when the destination is still aliased (cloned onto the wire) or
//! a view, the old implementation materialized the range (pass 1) and
//! then folded the source in (pass 2); the fused path writes
//! `out[i] = dst[i] ⊕ src[i]` in a single pass, optionally into a dirty
//! recycled buffer. These tests pin the contract that fusion changed
//! *only* the traffic, never the bits: across every dtype, every reduce
//! op, aliased/viewed/unique destinations and typed/viewed/wire sources,
//! the result is byte-identical to materialize-then-fold, surviving
//! sharers are untouched, and a recycled pool buffer's stale contents
//! never leak through.
//!
//! Buffers are built from raw bit patterns so denormals, negative zero,
//! and NaN payloads are exercised (Min/Max NaN propagation must agree
//! between the fused and two-pass kernels); equality is asserted on
//! re-encoded bytes because NaN != NaN would foil value comparison.

use pcoll_comm::{DType, Payload, ReduceOp, TypedBuf};
use proptest::prelude::*;

const DTYPES: [DType; 4] = [DType::F32, DType::F64, DType::I32, DType::I64];
const OPS: [ReduceOp; 4] = [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max];

/// Build a buffer of `dtype` from raw 64-bit patterns (truncated to the
/// element width), so every representable bit pattern can appear.
fn buf_from_bits(dtype: DType, bits: &[u64]) -> TypedBuf {
    match dtype {
        DType::F32 => TypedBuf::from(
            bits.iter()
                .map(|&b| f32::from_bits(b as u32))
                .collect::<Vec<_>>(),
        ),
        DType::F64 => TypedBuf::from(bits.iter().map(|&b| f64::from_bits(b)).collect::<Vec<_>>()),
        DType::I32 => TypedBuf::from(bits.iter().map(|&b| b as i32).collect::<Vec<_>>()),
        DType::I64 => TypedBuf::from(bits.iter().map(|&b| b as i64).collect::<Vec<_>>()),
    }
}

fn bytes_of(buf: &TypedBuf) -> Vec<u8> {
    let mut w = Vec::new();
    buf.extend_le_bytes(&mut w);
    w
}

/// How the destination payload is shaped before the reduce.
#[derive(Debug, Clone, Copy)]
enum DstForm {
    /// Uniquely owned, full range: the in-place fast path.
    Unique,
    /// A clone is retained (an in-flight send): copy-on-write, fused.
    Aliased,
    /// A view into a padded parent buffer (a segmented-ring chunk), the
    /// parent handle retained — shared *and* viewed.
    View,
    /// A view whose parent handle was dropped: refcount 1, so fusion
    /// triggers on `is_view` alone.
    UniqueView,
    /// Wire-borne destination: the decode-then-fold fallback.
    Wire,
}

/// How the source payload is shaped.
#[derive(Debug, Clone, Copy)]
enum SrcForm {
    Typed,
    /// A range view into a padded parent (only the range must fold in).
    View,
    /// Wire bytes, as delivered by the TCP receive path.
    Wire,
}

const DST_FORMS: [DstForm; 5] = [
    DstForm::Unique,
    DstForm::Aliased,
    DstForm::View,
    DstForm::UniqueView,
    DstForm::Wire,
];
const SRC_FORMS: [SrcForm; 3] = [SrcForm::Typed, SrcForm::View, SrcForm::Wire];

/// Pad `bits` with `pad` sentinel elements on both sides and return a
/// view payload covering just the middle — plus the parent payload and
/// its bytes, so the test can assert the whole backing allocation
/// (padding *and* viewed range) survives the reduce untouched.
fn view_payload(dtype: DType, bits: &[u64], pad: usize) -> (Payload, Payload, Vec<u8>) {
    let mut padded: Vec<u64> = vec![0xDEAD_BEEF_u64; pad];
    padded.extend_from_slice(bits);
    padded.extend(std::iter::repeat_n(0xDEAD_BEEF_u64, pad));
    let parent = Payload::new(buf_from_bits(dtype, &padded));
    let parent_bytes = bytes_of(&parent.to_buf());
    let view = parent.view(pad, bits.len());
    (view, parent, parent_bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn fused_reduce_assign_matches_materialize_then_fold(
        shape in (0usize..4, 0usize..4, 0usize..DST_FORMS.len(), 0usize..SRC_FORMS.len()),
        seed_pool in any::<bool>(),
        pad in 1usize..4,
        pairs in collection::vec((any::<u64>(), any::<u64>()), 1..33),
    ) {
        let (dt, opi, dst_form, src_form) = shape;
        let dtype = DTYPES[dt];
        let op = OPS[opi];
        // Integer Sum/Prod at full bit generality overflow-panics in
        // debug builds; clamp those to a small range, keep floats (and
        // integer Min/Max) fully general.
        let clamp = matches!(dtype, DType::I32 | DType::I64)
            && matches!(op, ReduceOp::Sum | ReduceOp::Prod);
        let (dbits, sbits): (Vec<u64>, Vec<u64>) = if clamp {
            pairs.iter().map(|&(a, b)| (a % 1000, b % 1000)).unzip()
        } else {
            pairs.iter().cloned().unzip()
        };

        // Destination, plus whatever sharer/parent must stay untouched.
        let (mut dst, frozen): (Payload, Option<(Payload, Vec<u8>)>) =
            match DST_FORMS[dst_form] {
                DstForm::Unique => (Payload::new(buf_from_bits(dtype, &dbits)), None),
                DstForm::Aliased => {
                    let p = Payload::new(buf_from_bits(dtype, &dbits));
                    let sharer = p.clone();
                    let bytes = bytes_of(&sharer.to_buf());
                    (p, Some((sharer, bytes)))
                }
                DstForm::View => {
                    // The full-range parent is the retained sharer.
                    let (v, parent, parent_bytes) = view_payload(dtype, &dbits, pad);
                    (v, Some((parent, parent_bytes)))
                }
                DstForm::UniqueView => {
                    // Drop the parent handle: the view is the allocation's
                    // only owner, yet must still take the fused path.
                    let (v, parent, _) = view_payload(dtype, &dbits, pad);
                    drop(parent);
                    (v, None)
                }
                DstForm::Wire => {
                    let p = Payload::new(buf_from_bits(dtype, &dbits));
                    let mut raw = Vec::new();
                    p.extend_wire_bytes(&mut raw);
                    (Payload::from_wire(dtype, raw).expect("whole elements"), None)
                }
            };

        // Source.
        let src: Payload = match SRC_FORMS[src_form] {
            SrcForm::Typed => Payload::new(buf_from_bits(dtype, &sbits)),
            SrcForm::View => view_payload(dtype, &sbits, pad).0,
            SrcForm::Wire => {
                let v = view_payload(dtype, &sbits, pad).0;
                let mut raw = Vec::new();
                v.extend_wire_bytes(&mut raw);
                Payload::from_wire(dtype, raw).expect("whole elements")
            }
        };

        // Reference: the old two passes — materialize the destination
        // range, then fold the materialized source in.
        let mut reference = dst.to_buf();
        reference.combine(&src.to_buf(), op).expect("shapes match");
        let expect = bytes_of(&reference);

        // A dirty pool buffer must be fully overwritten, never shine
        // through; a drained pool run proves the zero-fresh path too.
        let mut pool: Vec<TypedBuf> = if seed_pool {
            vec![buf_from_bits(dtype, &vec![0x5A5A_5A5A_5A5A_5A5Au64; dbits.len()])]
        } else {
            Vec::new()
        };

        dst.reduce_assign_pooled(&src, op, &mut pool).expect("shapes match");
        prop_assert_eq!(bytes_of(&dst.to_buf()), expect, "fused result differs from two-pass fold");

        if let Some((sharer, before)) = frozen {
            prop_assert_eq!(
                bytes_of(&sharer.to_buf()), before.clone(),
                "surviving sharer was mutated"
            );
        }
    }
}
