//! Property tests for the wire byte codec: `extend_le_bytes` /
//! `from_le_bytes` / `combine_le_bytes` must round-trip **byte-exactly**
//! across every dtype and arbitrary (including odd and zero) lengths —
//! the invariant the TCP receive path's no-intermediate-copy decode
//! relies on. Buffers are built from raw bit patterns, so denormals,
//! negative zero, and NaN payloads are all exercised; exactness is
//! asserted on the re-encoded bytes (NaN != NaN would foil a value-level
//! comparison but must still ship faithfully).

use pcoll_comm::{DType, ReduceOp, TypedBuf};
use proptest::prelude::*;

const DTYPES: [DType; 4] = [DType::F32, DType::F64, DType::I32, DType::I64];

/// Build a buffer of `dtype` from raw 64-bit patterns (truncated to the
/// element width), so every representable bit pattern can appear.
fn buf_from_bits(dtype: DType, bits: &[u64]) -> TypedBuf {
    match dtype {
        DType::F32 => TypedBuf::from(
            bits.iter()
                .map(|&b| f32::from_bits(b as u32))
                .collect::<Vec<_>>(),
        ),
        DType::F64 => TypedBuf::from(bits.iter().map(|&b| f64::from_bits(b)).collect::<Vec<_>>()),
        DType::I32 => TypedBuf::from(bits.iter().map(|&b| b as i32).collect::<Vec<_>>()),
        DType::I64 => TypedBuf::from(bits.iter().map(|&b| b as i64).collect::<Vec<_>>()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_is_byte_exact(
        dt in 0usize..4,
        bits in collection::vec(any::<u64>(), 0..41),
    ) {
        let dtype = DTYPES[dt];
        let buf = buf_from_bits(dtype, &bits);
        let mut wire = Vec::new();
        buf.extend_le_bytes(&mut wire);
        prop_assert_eq!(wire.len(), buf.byte_len());
        let back = TypedBuf::from_le_bytes(dtype, &wire).expect("whole elements");
        prop_assert_eq!(back.dtype(), dtype);
        prop_assert_eq!(back.len(), buf.len());
        let mut wire2 = Vec::new();
        back.extend_le_bytes(&mut wire2);
        prop_assert_eq!(wire, wire2, "decode → re-encode must be identity");
    }

    #[test]
    fn ragged_byte_slices_are_rejected(dt in 0usize..4, nbytes in 0usize..64) {
        let dtype = DTYPES[dt];
        let raw = vec![0u8; nbytes];
        let decoded = TypedBuf::from_le_bytes(dtype, &raw);
        if nbytes % dtype.size_of() == 0 {
            prop_assert_eq!(decoded.expect("whole elements").len(), nbytes / dtype.size_of());
        } else {
            prop_assert!(decoded.is_none(), "ragged input must be rejected");
        }
    }

    #[test]
    fn combine_le_bytes_equals_materialize_then_combine(
        dt in 0usize..4,
        op in 0usize..4,
        pairs in collection::vec((any::<u64>(), any::<u64>()), 1..33),
    ) {
        let dtype = DTYPES[dt];
        let op = [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max][op];
        // Integer dtypes only for Sum/Prod would overflow-panic in debug;
        // map the raw bits into a small range for I32/I64 to keep the
        // arithmetic defined, and keep floats at full bit generality.
        let (abits, bbits): (Vec<u64>, Vec<u64>) = match dtype {
            DType::I32 | DType::I64 => pairs.iter().map(|&(a, b)| (a % 1000, b % 1000)).unzip(),
            _ => pairs.iter().cloned().unzip(),
        };
        let acc0 = buf_from_bits(dtype, &abits);
        let src = buf_from_bits(dtype, &bbits);
        let mut wire = Vec::new();
        src.extend_le_bytes(&mut wire);

        let mut via_bytes = acc0.clone();
        via_bytes.combine_le_bytes(&wire, op).expect("length matches");
        let mut via_buf = acc0;
        via_buf.combine(&src, op).expect("shape matches");

        // Byte-level equality again, to stay NaN-proof.
        let (mut w1, mut w2) = (Vec::new(), Vec::new());
        via_bytes.extend_le_bytes(&mut w1);
        via_buf.extend_le_bytes(&mut w2);
        prop_assert_eq!(w1, w2);
    }
}
