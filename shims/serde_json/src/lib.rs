//! Offline `serde_json` shim: `to_string` / `from_str` over the serde
//! shim's JSON value model.

pub use serde::json::{Error, Value};

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json())
}

/// Alias of [`to_string`] (the shim's writer has no pretty mode; the
/// output stays machine-readable either way).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    to_string(value)
}

/// Parse a JSON string into a deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let v = Value::parse(s)?;
    T::from_value(&v)
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip_via_strings() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(u64::MAX)];
        let s = super::to_string(&v).unwrap();
        let back: Vec<Option<u64>> = super::from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn error_on_garbage() {
        assert!(super::from_str::<u32>("not json").is_err());
        assert!(super::from_str::<u32>("\"str\"").is_err());
    }
}
