//! Offline `proptest` shim: deterministic random testing without
//! shrinking. Supports the strategy surface this workspace uses — numeric
//! ranges, `any::<T>()`, tuples, `collection::vec`, `prop_map`,
//! `prop_flat_map` — and the `proptest!` / `prop_assert*` macros.
//!
//! Cases are generated from a SplitMix64 stream seeded by the test name,
//! so failures are reproducible run-to-run (there is no shrinking: the
//! failing case's inputs are whatever the assertion message shows).

use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator used to drive strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name → stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.gen_value(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.gen_value(rng)).gen_value(rng)
    }
}

pub struct Filter<S, F> {
    base: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.gen_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive cases",
            self.whence
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Numeric range strategies.
macro_rules! range_strategy_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )+};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                // The unit draw is < 1, but the cast/affine rounding can
                // still land on `end`; clamp to keep the range half-open.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
    )+};
}
range_strategy_float!(f32, f64);

// Tuple strategies.
macro_rules! tuple_strategy {
    ($(($($t:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.gen_value(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

pub struct Any<A> {
    _marker: std::marker::PhantomData<fn() -> A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn gen_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// collection::vec
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros + prelude
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` block: optional `#![proptest_config(..)]` header, then
/// test functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __strategy = ( $($strat,)+ );
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let ( $($arg,)+ ) =
                        $crate::Strategy::gen_value(&__strategy, &mut __rng);
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = (3usize..10).gen_value(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-2.0f32..2.0).gen_value(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic("combinators");
        let strat =
            (1usize..5).prop_flat_map(|n| collection::vec(0u32..10, n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = strat.gen_value(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, config applies, asserts work.
        #[test]
        fn macro_smoke(a in 0u64..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            let _ = b;
        }
    }

    #[test]
    fn macro_generated_test_runs() {
        macro_smoke();
    }
}
