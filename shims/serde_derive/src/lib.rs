//! `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! Implemented directly on `proc_macro` token streams (no syn/quote, which
//! are unavailable offline). Supports the item shapes this workspace
//! actually derives on:
//!
//! - structs with named fields, tuple structs (newtype and n-ary), unit
//!   structs;
//! - enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's default representation);
//! - no generic parameters (none of the derived types here have any).

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------------------

enum Fields {
    Unit,
    /// Named field identifiers, in declaration order.
    Named(Vec<String>),
    /// Number of tuple fields.
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!(
                "serde shim derive: generic type `{name}` is not supported; \
                 add a manual impl or extend shims/serde_derive"
            );
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde shim derive: malformed struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde shim derive: malformed enum body: {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Parse `vis ident : Type ,` sequences, returning the field names.
/// Types are skipped by tracking `<`/`>` nesting (groups are atomic
/// tokens, so only angle brackets need counting).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after `{name}`, got {other:?}"),
        }
        names.push(name);
        // Skip the type up to a top-level comma.
        let mut angle_depth = 0i32;
        for t in toks.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    names
}

/// Count fields of a tuple struct/variant: top-level commas (at angle
/// depth 0) + 1, ignoring a trailing comma, skipping per-field attrs/vis.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_tokens = false;
    let mut last_was_comma = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                last_was_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                last_was_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                last_was_comma = true;
            }
            _ => {
                saw_tokens = true;
                last_was_comma = false;
            }
        }
    }
    if !saw_tokens {
        return 0;
    }
    if last_was_comma {
        count
    } else {
        count + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip variant attributes.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                toks.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                toks.next();
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        for t in toks.by_ref() {
            if let TokenTree::Punct(p) = &t {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen (string-built, then reparsed into a TokenStream)
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let body = match &fields {
                Fields::Unit => "serde::json::Value::Null".to_owned(),
                Fields::Named(names) => {
                    let pairs: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("serde::json::Value::Obj(vec![{}])", pairs.join(", "))
                }
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_owned(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("serde::json::Value::Arr(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::json::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => serde::json::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => serde::json::Value::Obj(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::json::Value::Obj(vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 serde::json::Value::Arr(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::json::Value::Obj(vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 serde::json::Value::Obj(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::json::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let body = match &fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("{f}: serde::Deserialize::from_value(__v.field(\"{f}\")?)?")
                        })
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "let __items = __v.as_arr()?;\n\
                         if __items.len() != {n} {{\n\
                             return Err(serde::json::Error::new(\
                                 \"wrong tuple length for {name}\"));\n\
                         }}\n\
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::json::Value) \
                         -> ::std::result::Result<Self, serde::json::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             serde::Deserialize::from_value(__inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let __items = __inner.as_arr()?;\n\
                                     if __items.len() != {n} {{\n\
                                         return Err(serde::json::Error::new(\
                                             \"wrong arity for {name}::{vn}\"));\n\
                                     }}\n\
                                     Ok({name}::{vn}({}))\n\
                                 }}",
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(\
                                         __inner.field(\"{f}\")?)?"
                                    )
                                })
                                .collect();
                            format!("\"{vn}\" => Ok({name}::{vn} {{ {} }}),", inits.join(", "))
                        }
                        Fields::Unit => unreachable!(),
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::json::Value) \
                         -> ::std::result::Result<Self, serde::json::Error> {{\n\
                         match __v {{\n\
                             serde::json::Value::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 __other => Err(serde::json::Error::new(format!(\n\
                                     \"unknown {name} variant `{{__other}}`\"))),\n\
                             }},\n\
                             serde::json::Value::Obj(__pairs) if __pairs.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__pairs[0];\n\
                                 match __tag.as_str() {{\n\
                                     {}\n\
                                     __other => Err(serde::json::Error::new(format!(\n\
                                         \"unknown {name} variant `{{__other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(serde::json::Error::new(format!(\n\
                                 \"expected {name} variant, got {{}}\", __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated invalid Rust")
}
