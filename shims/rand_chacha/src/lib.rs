//! `ChaCha8Rng`: a real ChaCha-8 keystream generator behind the shim
//! `rand` traits. Deterministic, portable, and statistically strong —
//! everything the reproduction's seeded experiments need.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, 32-byte seed, 64-bit block counter.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 ⇒ exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// Position in the keystream, in 32-bit words already consumed.
    pub fn get_word_pos(&self) -> u128 {
        // `refill` pre-increments `counter`, so when a block is partially
        // consumed (`index < 16`) the words before it came from the
        // previous `counter - 1` blocks.
        if self.index >= 16 {
            (self.counter as u128) * 16
        } else {
            (self.counter as u128 - 1) * 16 + self.index as u128
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniformish_f64() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn word_pos_counts_consumed_words() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(r.get_word_pos(), 0);
        r.next_u32();
        assert_eq!(r.get_word_pos(), 1);
        for _ in 0..15 {
            r.next_u32();
        }
        assert_eq!(r.get_word_pos(), 16);
        r.next_u64();
        assert_eq!(r.get_word_pos(), 18);
    }

    #[test]
    fn rfc_layout_smoke() {
        // Different keys give different streams; counter advances blocks.
        let mut r = ChaCha8Rng::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }
}
