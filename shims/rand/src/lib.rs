//! Minimal `rand` 0.8-style shim: `RngCore` / `SeedableRng` / `Rng` with
//! `gen`, `gen_range`, `gen_bool`, plus `seq::SliceRandom` and
//! `seq::index::sample`.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, with the SplitMix64-based `seed_from_u64`
/// default the real `rand_core` uses.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 stream expanded into the seed bytes.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )+};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )+};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )+};
}

impl_sample_range_sint!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // `u < 1` but rounding in the affine map can still land on
                // `end`; clamp to keep the half-open contract.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
    )+};
}

impl_sample_range_float!(f32, f64);

/// The user-facing extension trait.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice shuffling/choosing.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }

    pub mod index {
        use super::super::{RngCore, SampleRange};

        /// A sampled set of distinct indices.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            pub fn index(&self, i: usize) -> usize {
                self.0[i]
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length` (partial
        /// Fisher–Yates over a scratch identity vector).
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "sample: amount {amount} > length {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = (i..length).sample_from(rng);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Step(u64);
    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0 >> 1
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = Step(9);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: usize = r.gen_range(0..=4);
            assert!(w <= 4);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Step(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_distinct() {
        let mut r = Step(5);
        let s = seq::index::sample(&mut r, 10, 4);
        assert_eq!(s.len(), 4);
        let v = s.into_vec();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert!(v.iter().all(|&i| i < 10));
    }
}
