//! Minimal `crossbeam` stand-in: MPMC unbounded channels plus a `select!`
//! macro restricted to `recv(rx) -> pat => arm` branches (the only form
//! this workspace uses).
//!
//! Blocking multi-channel select is implemented with per-call wakers: the
//! waiting side registers a waker with every polled channel, re-checks, and
//! parks with a short backstop timeout so a lost wakeup can only cost
//! milliseconds, never a deadlock.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    pub struct SendError<T>(pub T);

    // Like the real crossbeam: Debug without requiring `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }
    impl std::error::Error for RecvError {}

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// One-shot waker a `select!` call parks on.
    pub struct SelectWaker {
        flag: Mutex<bool>,
        cv: Condvar,
    }

    impl SelectWaker {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            SelectWaker {
                flag: Mutex::new(false),
                cv: Condvar::new(),
            }
        }

        pub fn notify(&self) {
            *self.flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
            self.cv.notify_all();
        }

        pub fn woken(&self) -> bool {
            *self.flag.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Park until notified or `timeout` elapses (backstop against lost
        /// wakeups); resets the flag for reuse.
        pub fn wait_timeout(&self, timeout: Duration) {
            let mut flag = self.flag.lock().unwrap_or_else(|e| e.into_inner());
            if !*flag {
                let (g, _) = self
                    .cv
                    .wait_timeout(flag, timeout)
                    .unwrap_or_else(|e| e.into_inner());
                flag = g;
            }
            *flag = false;
        }
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        wakers: Vec<Arc<SelectWaker>>,
    }

    impl<T> Inner<T> {
        fn wake_all(&mut self) {
            for w in self.wakers.drain(..) {
                w.notify();
            }
        }
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        cv: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                wakers: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.lock();
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            inner.wake_all();
            drop(inner);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.lock();
            inner.senders -= 1;
            if inner.senders == 0 {
                inner.wake_all();
                drop(inner);
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.lock();
            match inner.queue.pop_front() {
                Some(v) => Ok(v),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// `try_recv` folded into the shape `select!` wants: `None` means
        /// "not ready", `Some(result)` means the branch fires.
        pub fn try_recv_res(&self) -> Option<Result<T, RecvError>> {
            match self.try_recv() {
                Ok(v) => Some(Ok(v)),
                Err(TryRecvError::Disconnected) => Some(Err(RecvError)),
                Err(TryRecvError::Empty) => None,
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.lock();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .cv
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.lock();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self
                    .shared
                    .cv
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = g;
            }
        }

        pub fn is_empty(&self) -> bool {
            self.shared.lock().queue.is_empty()
        }

        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Register a waker to be notified on the next send/disconnect. If
        /// the channel is already ready, the waker fires immediately so the
        /// caller's re-check cannot miss a message that raced registration.
        pub fn register_waker(&self, waker: &Arc<SelectWaker>) {
            let mut inner = self.shared.lock();
            if !inner.queue.is_empty() || inner.senders == 0 {
                waker.notify();
                return;
            }
            inner.wakers.retain(|w| !w.woken());
            if !inner.wakers.iter().any(|w| Arc::ptr_eq(w, waker)) {
                inner.wakers.push(Arc::clone(waker));
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.lock().receivers -= 1;
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    // Let `crossbeam::channel::select!` resolve (the exported macro lives
    // at the crate root).
    pub use crate::select;
}

/// `select!` restricted to `recv(receiver) -> pattern => arm` branches.
///
/// Branches are polled in order; when none is ready the caller parks on a
/// fresh waker registered with every branch's channel (5 ms backstop).
#[macro_export]
macro_rules! select {
    ($(recv($rx:expr) -> $res:pat => $body:expr),+ $(,)?) => {{
        let __waker = ::std::sync::Arc::new($crate::channel::SelectWaker::new());
        'select: loop {
            $(
                if let ::std::option::Option::Some(__r) = ($rx).try_recv_res() {
                    let $res = __r;
                    break 'select $body;
                }
            )+
            $(
                ($rx).register_waker(&__waker);
            )+
            __waker.wait_timeout(::core::time::Duration::from_millis(5));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_surfaces() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = unbounded::<u8>();
        drop(rx2);
        assert!(tx2.send(9).is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn select_picks_ready_branch() {
        let (tx1, rx1) = unbounded::<u8>();
        let (_tx2, rx2) = unbounded::<u8>();
        tx1.send(7).unwrap();
        let got = crate::select! {
            recv(rx1) -> v => v.unwrap(),
            recv(rx2) -> v => v.unwrap(),
        };
        assert_eq!(got, 7);
    }

    #[test]
    fn select_blocks_until_cross_thread_send() {
        let (tx, rx) = unbounded::<u8>();
        let (_keep, rx2) = unbounded::<u8>();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(3).unwrap();
        });
        let got = crate::select! {
            recv(rx) -> v => v.unwrap(),
            recv(rx2) -> v => v.unwrap(),
        };
        assert_eq!(got, 3);
        h.join().unwrap();
    }
}
