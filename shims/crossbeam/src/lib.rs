//! Minimal `crossbeam` stand-in: MPMC unbounded *and bounded* channels
//! plus a `select!` macro restricted to `recv(rx) -> pat => arm` branches
//! (the only form this workspace uses).
//!
//! Blocking multi-channel select is implemented with per-call wakers: the
//! waiting side registers a waker with every polled channel, re-checks, and
//! parks with a short backstop timeout so a lost wakeup can only cost
//! milliseconds, never a deadlock.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    pub struct SendError<T>(pub T);

    /// Non-blocking send failure on a bounded channel.
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    /// Deadline-bounded send failure on a bounded channel.
    pub enum SendTimeoutError<T> {
        Timeout(T),
        Disconnected(T),
    }

    // Like the real crossbeam: Debug without requiring `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> std::fmt::Debug for SendTimeoutError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("Timeout(..)"),
                SendTimeoutError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }
    impl std::error::Error for RecvError {}

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// One-shot waker a `select!` call parks on.
    pub struct SelectWaker {
        flag: Mutex<bool>,
        cv: Condvar,
    }

    impl SelectWaker {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            SelectWaker {
                flag: Mutex::new(false),
                cv: Condvar::new(),
            }
        }

        pub fn notify(&self) {
            *self.flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
            self.cv.notify_all();
        }

        pub fn woken(&self) -> bool {
            *self.flag.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Park until notified or `timeout` elapses (backstop against lost
        /// wakeups); resets the flag for reuse.
        pub fn wait_timeout(&self, timeout: Duration) {
            let mut flag = self.flag.lock().unwrap_or_else(|e| e.into_inner());
            if !*flag {
                let (g, _) = self
                    .cv
                    .wait_timeout(flag, timeout)
                    .unwrap_or_else(|e| e.into_inner());
                flag = g;
            }
            *flag = false;
        }
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        wakers: Vec<Arc<SelectWaker>>,
        /// `None` = unbounded; `Some(cap)` = at most `cap` queued items.
        cap: Option<usize>,
    }

    impl<T> Inner<T> {
        fn wake_all(&mut self) {
            for w in self.wakers.drain(..) {
                w.notify();
            }
        }
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        cv: Condvar,
        /// Senders blocked on a full bounded queue park here; every pop
        /// (and every receiver drop) notifies it.
        cv_space: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                wakers: Vec::new(),
                cap,
            }),
            cv: Condvar::new(),
            cv_space: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// A channel holding at most `cap` queued items; full-queue sends
    /// block ([`Sender::send`]), fail ([`Sender::try_send`]), or block
    /// with a deadline ([`Sender::send_timeout`]). Zero-capacity
    /// rendezvous channels are not supported.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded(0) rendezvous channels are unsupported");
        channel(Some(cap))
    }

    impl<T> Inner<T> {
        fn is_full(&self) -> bool {
            self.cap.is_some_and(|c| self.queue.len() >= c)
        }
    }

    impl<T> Sender<T> {
        fn push(shared: &Shared<T>, mut inner: std::sync::MutexGuard<'_, Inner<T>>, value: T) {
            inner.queue.push_back(value);
            inner.wake_all();
            drop(inner);
            shared.cv.notify_one();
        }

        /// Blocking send: waits for space on a full bounded channel.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self.send_deadline(value, None) {
                Ok(()) => Ok(()),
                Err(SendTimeoutError::Disconnected(v)) => Err(SendError(v)),
                Err(SendTimeoutError::Timeout(_)) => unreachable!("no deadline given"),
            }
        }

        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let inner = self.shared.lock();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if inner.is_full() {
                return Err(TrySendError::Full(value));
            }
            Self::push(&self.shared, inner, value);
            Ok(())
        }

        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            self.send_deadline(value, Some(Instant::now() + timeout))
        }

        fn send_deadline(
            &self,
            value: T,
            deadline: Option<Instant>,
        ) -> Result<(), SendTimeoutError<T>> {
            let mut inner = self.shared.lock();
            loop {
                if inner.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                if !inner.is_full() {
                    Self::push(&self.shared, inner, value);
                    return Ok(());
                }
                inner = match deadline {
                    None => self
                        .shared
                        .cv_space
                        .wait(inner)
                        .unwrap_or_else(|e| e.into_inner()),
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return Err(SendTimeoutError::Timeout(value));
                        }
                        self.shared
                            .cv_space
                            .wait_timeout(inner, d - now)
                            .unwrap_or_else(|e| e.into_inner())
                            .0
                    }
                };
            }
        }

        /// Items currently queued (a bounded sender's backlog gauge).
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.shared.lock().queue.is_empty()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.lock();
            inner.senders -= 1;
            if inner.senders == 0 {
                inner.wake_all();
                drop(inner);
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.lock();
            match inner.queue.pop_front() {
                Some(v) => {
                    drop(inner);
                    self.shared.cv_space.notify_one();
                    Ok(v)
                }
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// `try_recv` folded into the shape `select!` wants: `None` means
        /// "not ready", `Some(result)` means the branch fires.
        pub fn try_recv_res(&self) -> Option<Result<T, RecvError>> {
            match self.try_recv() {
                Ok(v) => Some(Ok(v)),
                Err(TryRecvError::Disconnected) => Some(Err(RecvError)),
                Err(TryRecvError::Empty) => None,
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.lock();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.cv_space.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .cv
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.lock();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.cv_space.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self
                    .shared
                    .cv
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = g;
            }
        }

        pub fn is_empty(&self) -> bool {
            self.shared.lock().queue.is_empty()
        }

        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Register a waker to be notified on the next send/disconnect. If
        /// the channel is already ready, the waker fires immediately so the
        /// caller's re-check cannot miss a message that raced registration.
        pub fn register_waker(&self, waker: &Arc<SelectWaker>) {
            let mut inner = self.shared.lock();
            if !inner.queue.is_empty() || inner.senders == 0 {
                waker.notify();
                return;
            }
            inner.wakers.retain(|w| !w.woken());
            if !inner.wakers.iter().any(|w| Arc::ptr_eq(w, waker)) {
                inner.wakers.push(Arc::clone(waker));
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.lock();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                // Senders blocked on a full queue must observe the
                // disconnect instead of waiting forever.
                self.shared.cv_space.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    // Let `crossbeam::channel::select!` resolve (the exported macro lives
    // at the crate root).
    pub use crate::select;
}

/// `select!` restricted to `recv(receiver) -> pattern => arm` branches.
///
/// Branches are polled in order; when none is ready the caller parks on a
/// fresh waker registered with every branch's channel (5 ms backstop).
#[macro_export]
macro_rules! select {
    ($(recv($rx:expr) -> $res:pat => $body:expr),+ $(,)?) => {{
        let __waker = ::std::sync::Arc::new($crate::channel::SelectWaker::new());
        'select: loop {
            $(
                if let ::std::option::Option::Some(__r) = ($rx).try_recv_res() {
                    let $res = __r;
                    break 'select $body;
                }
            )+
            $(
                ($rx).register_waker(&__waker);
            )+
            __waker.wait_timeout(::core::time::Duration::from_millis(5));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_surfaces() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = unbounded::<u8>();
        drop(rx2);
        assert!(tx2.send(9).is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn bounded_try_send_reports_full_then_drains() {
        let (tx, rx) = bounded(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the pop below
            tx.len()
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert!(h.join().unwrap() <= 1, "capacity bound held");
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn bounded_send_timeout_expires_on_full_queue() {
        let (tx, _rx) = bounded(1);
        tx.send(1).unwrap();
        assert!(matches!(
            tx.send_timeout(2, Duration::from_millis(15)),
            Err(SendTimeoutError::Timeout(2))
        ));
    }

    #[test]
    fn bounded_send_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(h.join().unwrap().is_err(), "disconnect surfaces");
    }

    #[test]
    fn select_picks_ready_branch() {
        let (tx1, rx1) = unbounded::<u8>();
        let (_tx2, rx2) = unbounded::<u8>();
        tx1.send(7).unwrap();
        let got = crate::select! {
            recv(rx1) -> v => v.unwrap(),
            recv(rx2) -> v => v.unwrap(),
        };
        assert_eq!(got, 7);
    }

    #[test]
    fn select_blocks_until_cross_thread_send() {
        let (tx, rx) = unbounded::<u8>();
        let (_keep, rx2) = unbounded::<u8>();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(3).unwrap();
        });
        let got = crate::select! {
            recv(rx) -> v => v.unwrap(),
            recv(rx2) -> v => v.unwrap(),
        };
        assert_eq!(got, 3);
        h.join().unwrap();
    }
}
