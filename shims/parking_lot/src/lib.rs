//! Minimal `parking_lot` stand-in built on `std::sync`.
//!
//! Differences from std that this shim papers over, matching parking_lot:
//! - `Mutex::lock` returns the guard directly (no poisoning).
//! - `Condvar::wait`/`wait_for` take `&mut MutexGuard` instead of consuming
//!   the guard.

use std::ops::{Deref, DerefMut};
use std::sync as ss;
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: ss::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back in.
    inner: Option<ss::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: ss::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(g) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(ss::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(ss::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: ss::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            inner: ss::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(50));
        }
        h.join().unwrap();
        assert!(*done);
    }
}
