//! Offline `serde` shim.
//!
//! Instead of the real serde's visitor data model, this shim defines
//! [`Serialize`]/[`Deserialize`] directly over a JSON [`json::Value`]
//! tree. `#[derive(Serialize, Deserialize)]` (from the sibling
//! `serde_derive` shim) generates impls that map structs/enums to the same
//! JSON shapes real `serde_json` would produce (externally tagged enums,
//! transparent newtypes), so downstream code and serialized artifacts stay
//! compatible if the real crates are ever swapped back in.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Value};

/// Convert `self` into a JSON value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a JSON value tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i128) }
        }
    )+};
}
ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Int(*self as i128)
    }
}
impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("secs".to_owned(), Value::Int(self.as_secs() as i128)),
            ("nanos".to_owned(), Value::Int(self.subsec_nanos() as i128)),
        ])
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_int()?;
                <$t>::try_from(i).map_err(|_| {
                    Error::new(format!(
                        "integer {} out of range for {}", i, stringify!($t)
                    ))
                })
            }
        }
    )+};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, u128, i128);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_float()
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_float()? as f32)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-char string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()?.iter().map(T::from_value).collect()
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_arr()?;
                if items.len() != $len {
                    return Err(Error::new(format!(
                        "expected array of length {}, got {}", $len, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )+};
}
de_tuple!(
    (1; 0 A),
    (2; 0 A, 1 B),
    (3; 0 A, 1 B, 2 C),
    (4; 0 A, 1 B, 2 C, 3 D)
);

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_obj()?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_obj()?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(v.field("secs")?)?;
        let nanos = u32::from_value(v.field("nanos")?)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        for v in [0i64, -5, 1 << 40] {
            let j = v.to_value();
            assert_eq!(i64::from_value(&j).unwrap(), v);
        }
        let f = 1.25f32;
        assert_eq!(f32::from_value(&f.to_value()).unwrap(), f);
        let s = "hé\"llo\n".to_owned();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn container_roundtrip() {
        let v: Vec<(usize, f32)> = vec![(1, 0.5), (2, -3.0)];
        let j = v.to_value();
        let text = j.to_json();
        let parsed = Value::parse(&text).unwrap();
        let back: Vec<(usize, f32)> = Deserialize::from_value(&parsed).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn option_null() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Value::Int(3)).unwrap(),
            Some(3u32)
        );
    }
}
