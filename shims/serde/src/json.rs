//! JSON value tree, parser, and writer shared by the serde/serde_json
//! shims.

use std::fmt;

/// Error type surfaced as `serde_json::Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A parsed JSON document. Integers are kept exact (i128) so `u64` seeds
/// survive the round trip; objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    pub fn as_int(&self) -> Result<i128, Error> {
        match self {
            Value::Int(i) => Ok(*i),
            // Tolerate floats with integral values (e.g. 1e3).
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Ok(*f as i128),
            other => Err(Error::new(format!(
                "expected integer, got {}",
                other.kind()
            ))),
        }
    }

    pub fn as_float(&self) -> Result<f64, Error> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            // serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::new(format!("expected number, got {}", other.kind()))),
        }
    }

    pub fn as_arr(&self) -> Result<&[Value], Error> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(Error::new(format!("expected array, got {}", other.kind()))),
        }
    }

    pub fn as_obj(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Obj(pairs) => Ok(pairs),
            other => Err(Error::new(format!("expected object, got {}", other.kind()))),
        }
    }

    /// Object field lookup, erroring with the field name on a miss.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::new(format!("missing field `{name}`")))
    }

    // -- writer ------------------------------------------------------------

    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                out.push_str(&i.to_string());
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` is the shortest representation that round-trips.
                    let s = format!("{f:?}");
                    out.push_str(&s);
                } else {
                    // Match serde_json: non-finite numbers become null.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    // -- parser ------------------------------------------------------------

    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(s).map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"a":[1,-2.5,true,null,"x\ny"],"b":{"c":18446744073709551615}}"#;
        let v = Value::parse(text).unwrap();
        let re = Value::parse(&v.to_json()).unwrap();
        assert_eq!(v, re);
        assert_eq!(
            v.field("b").unwrap().field("c").unwrap().as_int().unwrap(),
            u64::MAX as i128
        );
    }

    #[test]
    fn float_shortest_roundtrip() {
        for f in [0.1f64, 1.0, -3.25e-10, 1e300] {
            let v = Value::Float(f);
            match Value::parse(&v.to_json()).unwrap() {
                Value::Float(g) => assert_eq!(f, g),
                Value::Int(i) => assert_eq!(f, i as f64),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("nul").is_err());
        assert!(Value::parse("1 2").is_err());
    }
}
