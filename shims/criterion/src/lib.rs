//! Offline `criterion` shim. Compiles the same bench sources the real
//! crate would (`harness = false` entry points, groups, throughput,
//! parameterized ids) and, when run, executes each benchmark a handful of
//! times and prints a one-line mean — enough for `cargo bench --no-run`
//! gating in CI and quick local smoke timing, without the statistics
//! machinery.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (f, Some(p)) if f.is_empty() => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_with_setup<S, O, Setup: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: Setup,
        mut f: F,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            hint::black_box(f(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(group: &str, label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // One warm-up call, then `samples` timed single-iteration samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut total = Duration::ZERO;
    let mut n = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        n += b.iters;
    }
    let mean_ns = total.as_nanos() as f64 / n.max(1) as f64;
    let name = if group.is_empty() {
        label.to_owned()
    } else {
        format!("{group}/{label}")
    };
    println!("bench: {name:<48} {mean_ns:>14.0} ns/iter ({n} samples)");
}

#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    fn samples(&self) -> usize {
        if self.sample_size == 0 {
            5
        } else {
            self.sample_size.min(10)
        }
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.samples(),
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one("", &id.into().label(), self.samples(), &mut f);
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.min(10);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().label(), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().label(), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// `criterion_group!(name, target, ...)` and the
/// `name = ...; config = ...; targets = ...` long form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
