//! # eager-sgd-repro — umbrella crate
//!
//! Re-exports the whole workspace behind one façade so examples and
//! integration tests read like downstream user code:
//!
//! ```
//! use eager_sgd_repro::prelude::*;
//!
//! let results = World::launch(WorldConfig::instant(4), |c| {
//!     let ctx = RankCtx::new(c);
//!     let mut ar = ctx.partial_allreduce(
//!         DType::F32, 4, ReduceOp::Sum,
//!         QuorumPolicy::Majority, PartialOpts::default());
//!     let out = ar.allreduce(&TypedBuf::from(vec![1.0f32; 4]));
//!     ctx.finalize();
//!     out.data.as_f32().unwrap()[0]
//! });
//! assert!(results.iter().all(|&x| x <= 4.0));
//! ```
//!
//! Crate map (bottom-up): [`obs`] clocks, flight recorder, and metrics
//! → [`comm`] rank threads and typed messages →
//! [`sched`] schedule DAG engine → [`pcoll`] partial + synchronous
//! collectives → [`tensor`]/[`nn`]/[`data`]/[`imbalance`] the DL substrate
//! → [`core`] the eager-SGD trainer and theory → [`tune`] the closed-loop
//! adaptive quorum controller.

pub use datagen as data;
pub use dnn as nn;
pub use eager_sgd as core;
pub use imbalance;
pub use minitensor as tensor;
pub use pcoll;
pub use pcoll_comm as comm;
pub use pcoll_obs as obs;
pub use pcoll_sched as sched;
pub use pcoll_tune as tune;

/// The common imports for application code.
pub mod prelude {
    pub use datagen::{GaussianMixtureTask, HyperplaneTask, VideoDatasetSpec, VideoTask};
    pub use dnn::{Batch, LossKind, Model, Momentum, Optimizer, Sgd};
    pub use eager_sgd::{
        run_rank, HyperplaneWorkload, ImageWorkload, NapModel, QuorumTuner, SgdVariant, TrainLog,
        TrainerConfig, TunerSetup, VideoWorkload, Workload,
    };
    pub use imbalance::Injector;
    pub use minitensor::{Mat, TensorRng};
    pub use pcoll::{
        AlgoSelector, AllreduceAlgo, Hiccup, Pacing, PartialAllreduce, PartialOpts, QuorumPolicy,
        RankCtx, SimHarness, SimReport, SimSpec, StaleMode, SyncAllreduce,
    };
    pub use pcoll_comm::{
        DType, NetworkModel, Planet, ReduceOp, SimOpts, TypedBuf, World, WorldConfig,
    };
    pub use pcoll_tune::{
        adaptive_setup, static_setup, AdaptiveTunerCfg, ControllerKind, SkewEstimator, TelemetryBus,
    };
}
