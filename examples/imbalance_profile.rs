//! Text-mode rendering of the paper's §2 motivation: the three runtime
//! distributions (video LSTM, Transformer/WMT16, cloud ResNet-50) that
//! justify partial collectives.
//!
//! ```sh
//! cargo run --release --example imbalance_profile
//! ```

use datagen::text::SentenceLengthSampler;
use eager_sgd_repro::prelude::*;
use imbalance::cost::{cloud_resnet_floor_ms, lstm_batch_ms, transformer_batch_ms};
use imbalance::{Histogram, OnlineStats};

fn render(title: &str, hist: &Histogram, stats: &OnlineStats) {
    println!("\n{title}");
    println!(
        "  n={}, range {:.0}..{:.0} ms, mean {:.0}, std {:.0}",
        stats.count(),
        stats.min(),
        stats.max(),
        stats.mean(),
        stats.std()
    );
    let peak = hist
        .rows()
        .iter()
        .map(|(_, c)| *c)
        .max()
        .unwrap_or(1)
        .max(1);
    for (center, count) in hist.rows() {
        if count == 0 {
            continue;
        }
        let bar = "#".repeat((count * 50 / peak).max(1) as usize);
        println!("  {center:>6.0} ms | {bar} {count}");
    }
}

fn main() {
    println!("runtime distributions behind the paper's motivation (Fig. 2b, 3, 4)");

    // Fig 2b: LSTM on UCF101 — inherent, from video lengths.
    let task = VideoTask::new(VideoDatasetSpec::ucf101(1.0), 16, 1);
    let mut h = Histogram::new(0.0, 3500.0, 14);
    let mut s = OnlineStats::new();
    for b in 0..task.n_buckets() {
        let ms = lstm_batch_ms(task.bucket_len(b) as f64);
        h.push(ms);
        s.push(ms);
    }
    render("LSTM / UCF101 (inherent, from video lengths):", &h, &s);

    // Fig 3: Transformer on WMT16 — inherent, from sentence lengths.
    let sampler = SentenceLengthSampler::wmt16();
    let mut rng = TensorRng::new(2);
    let mut h = Histogram::new(0.0, 3500.0, 14);
    let mut s = OnlineStats::new();
    for _ in 0..5000 {
        let ms = transformer_batch_ms(sampler.sample_batch_mean(64, &mut rng));
        h.push(ms);
        s.push(ms);
    }
    render(
        "Transformer / WMT16 (inherent, from sentence lengths):",
        &h,
        &s,
    );

    // Fig 4: ResNet-50 on a cloud box — system-induced.
    let noise = Injector::cloud_default(3);
    let mut h = Histogram::new(350.0, 1900.0, 14);
    let mut s = OnlineStats::new();
    for step in 0..5000u64 {
        let ms = cloud_resnet_floor_ms() + noise.delay_ms(0, 2, step).min(1500.0);
        h.push(ms);
        s.push(ms);
    }
    render("ResNet-50 / ImageNet on cloud (system-induced):", &h, &s);

    println!(
        "\nall three are unimodal with long right tails: a blocking allreduce\n\
         pays the tail every step; a partial allreduce does not."
    );
}
