//! The paper's case study (§6.3), in miniature: LSTM video classification
//! with *inherent* load imbalance from variable-length videos — no
//! injected delays. Compares Horovod-style synch-SGD against eager-SGD
//! with majority allreduce (the variant the paper recommends here).
//!
//! ```sh
//! cargo run --release --example video_classification
//! ```

use eager_sgd_repro::prelude::*;
use std::sync::Arc;

fn train(variant: SgdVariant, task: Arc<VideoTask>) -> (f64, f32, f32) {
    const P: usize = 8;
    let logs = World::launch(WorldConfig::instant(P), move |c| {
        let ctx = RankCtx::new(c);
        let mut rng = TensorRng::new(99);
        let mut model = dnn::zoo::video_lstm(16, 32, 8, &mut rng);
        let mut opt = Sgd::new(0.12);
        let workload = VideoWorkload {
            task: Arc::clone(&task),
            eval_videos: 64,
        };
        let mut cfg = TrainerConfig::new(variant, 6, 12, 0.12);
        cfg.model_sync_every = Some(3);
        cfg.eval_every = 3;
        let log = run_rank(&ctx, &mut model, &mut opt, &workload, &cfg);
        ctx.finalize();
        log
    });
    let time = logs.iter().map(|l| l.total_train_s).sum::<f64>() / logs.len() as f64;
    let test = logs[0].final_test().unwrap();
    (time, test.top1, test.top5)
}

fn main() {
    // Synthetic UCF101: right-skewed lengths (the Fig. 2a distribution),
    // scaled 24x shorter so the example finishes in seconds.
    let mut spec = VideoDatasetSpec::ucf101(24.0);
    spec.classes = 8;
    spec.feat_dim = 16;
    let task = Arc::new(VideoTask::new(spec, 16, 5));
    let lens = task.lengths();
    let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
    println!(
        "video dataset: {} videos, {min}..{max} frames — batch compute is \
         Θ(frames),\nso steps are inherently imbalanced (§2.1)\n",
        lens.len()
    );

    let (t_sync, a1_sync, a5_sync) = train(SgdVariant::SynchHorovod, Arc::clone(&task));
    println!("synch-SGD (Horovod)   : {t_sync:.2} s, top-1 {a1_sync:.3}, top-5 {a5_sync:.3}");
    let (t_maj, a1_maj, a5_maj) = train(SgdVariant::EagerMajority, Arc::clone(&task));
    println!("eager-SGD (majority)  : {t_maj:.2} s, top-1 {a1_maj:.3}, top-5 {a5_maj:.3}");
    println!(
        "\nmajority speedup {:.2}x with matching accuracy — the Fig. 13 result \
         (paper: 1.27x)",
        t_sync / t_maj
    );
}
