//! Quickstart: train the paper's hyperplane-regression task with
//! synchronous SGD and with eager-SGD (solo partial allreduce) under a
//! straggler, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --transport tcp   # process-per-rank
//! ```
//!
//! With `--transport tcp` every rank is its own OS process on loopback
//! sockets (the binary re-`exec`s itself, `mpirun`-style). Each variant
//! is its own labeled launch: a worker process skips the variants that
//! are not its own (`train` returns `None` for those) and exits inside
//! the one it serves — only the parent reaches the final comparison.

use eager_sgd_repro::comm::Transport;
use eager_sgd_repro::prelude::*;
use std::sync::Arc;

fn train(variant: SgdVariant, transport: Transport) -> Option<(f64, f32)> {
    const P: usize = 4;
    const DIM: usize = 512;

    // The dataset generator is shared by all ranks (read-only; each TCP
    // rank process regenerates it from the same seed).
    let task = Arc::new(HyperplaneTask::new(DIM, 8_192, 0.5, 256, 7));

    let logs = World::launch_with(WorldConfig::instant(P), transport, move |c| {
        // One RankCtx per rank: owns this rank's progress engine.
        let ctx = RankCtx::new(c);

        // Identical model init on every rank (same seed) — the
        // data-parallel contract.
        let mut rng = TensorRng::new(1234);
        let mut model = dnn::zoo::hyperplane_mlp(DIM, &mut rng);
        let mut opt = Sgd::new(0.04);

        let workload = HyperplaneWorkload {
            task: Arc::clone(&task),
            local_batch: 64,
        };

        // 10 epochs × 12 steps; one random rank is delayed 80 ms per
        // step (light dynamic imbalance, as in §6.2).
        let mut cfg = TrainerConfig::new(variant, 10, 12, 0.04);
        cfg.injector = Injector::RandomRanks {
            k: 1,
            amount_ms: 80.0,
            seed: 3,
        };
        cfg.time_scale = 0.25; // 80 ms → 20 ms wall-clock

        // Balanced per-step compute keeps ranks loosely in lockstep, as
        // real GPU steps do; without it fast ranks sprint ahead and
        // staleness grows unboundedly (the regime §5 warns about).
        cfg.base_compute_ms = 60.0;
        cfg.model_sync_every = Some(5);
        cfg.grad_clip = Some(50.0);
        cfg.eval_every = 5;

        let log = run_rank(&ctx, &mut model, &mut opt, &workload, &cfg);
        ctx.finalize(); // barrier + engine shutdown (MPI_Finalize-like)
        log
    })?;

    let time = logs.iter().map(|l| l.total_train_s).sum::<f64>() / logs.len() as f64;
    let loss = logs[0].final_test().map(|t| t.loss).unwrap_or(f32::NAN);
    Some((time, loss))
}

fn transport_flag() -> String {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--transport" {
            return argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: --transport needs inproc|tcp");
                std::process::exit(2);
            });
        }
        i += 1;
    }
    "inproc".into()
}

fn main() {
    let flag = transport_flag();
    let transport_for = |label: &str| {
        Transport::parse(&flag, label).unwrap_or_else(|| {
            eprintln!("error: unknown transport `{flag}` (inproc|tcp)");
            std::process::exit(2);
        })
    };

    println!("training a 512-dim hyperplane regressor on 4 ranks, 1 straggler/step ({flag})\n");
    let sync = train(SgdVariant::SynchDeep500, transport_for("quickstart-sync"));
    if let Some((t, l)) = sync {
        println!("synch-SGD  : {t:.2} s, final val loss {l:.3}");
    }
    let eager = train(SgdVariant::EagerSolo, transport_for("quickstart-eager"));
    if let Some((t, l)) = eager {
        println!("eager-SGD  : {t:.2} s, final val loss {l:.3}");
    }
    if let (Some((t_sync, _)), Some((t_eager, _))) = (sync, eager) {
        println!(
            "\neager-SGD speedup: {:.2}x at comparable loss — the paper's headline \
             effect, in miniature",
            t_sync / t_eager
        );
    }
}
