//! The §8 extension: "construct a spectrum between solo, majority, and
//! full collectives". Sweeps the quorum policy on one skewed workload and
//! prints the freshness/latency trade-off — the knob a practitioner would
//! actually tune.
//!
//! ```sh
//! cargo run --release --example quorum_spectrum
//! ```

use eager_sgd_repro::prelude::*;
use std::time::{Duration, Instant};

fn measure(policy: QuorumPolicy, label: &str) {
    const P: usize = 8;
    const ROUNDS: u64 = 40;
    let out = World::launch(WorldConfig::instant(P).with_seed(3), move |c| {
        let ctx = RankCtx::new(c);
        let mut ar = ctx.partial_allreduce(
            DType::F32,
            256,
            ReduceOp::Sum,
            policy,
            PartialOpts::default(),
        );
        let mut rng = TensorRng::new(10 + ctx.rank() as u64);
        let mut lat_ms = 0.0;
        for _ in 0..ROUNDS {
            ctx.host_barrier();
            // Random skew: 0–24 ms per rank per round.
            std::thread::sleep(Duration::from_millis(rng.index(25) as u64));
            let t0 = Instant::now();
            let _ = ar.allreduce(&TypedBuf::from(vec![1.0f32; 256]));
            lat_ms += t0.elapsed().as_secs_f64() * 1e3;
            ctx.barrier();
        }
        let fresh = ar.traces().iter().filter(|t| t.fresh).count();
        ctx.finalize();
        (lat_ms / ROUNDS as f64, fresh as f64 / ROUNDS as f64)
    });
    let mean_lat = out.iter().map(|(l, _)| l).sum::<f64>() / out.len() as f64;
    let mean_fresh = out.iter().map(|(_, f)| f).sum::<f64>() / out.len() as f64;
    println!(
        "  {label:<14} expected fresh {:>5.2}  measured fresh {mean_fresh:>5.2}  \
         mean latency {mean_lat:>6.2} ms",
        policy.expected_active(8) / 8.0,
    );
}

fn main() {
    println!(
        "quorum spectrum on 8 ranks, random 0-24 ms skew per rank per round:\n\
         (fresh = fraction of rounds a rank's own gradient made it in)\n"
    );
    measure(QuorumPolicy::Solo, "solo");
    measure(QuorumPolicy::FirstOf(4), "first-of-4");
    measure(QuorumPolicy::Majority, "majority");
    measure(QuorumPolicy::Chain(2), "chain-2");
    measure(QuorumPolicy::Chain(4), "chain-4");
    measure(QuorumPolicy::Full, "full");
    println!(
        "\nlatency buys freshness: solo returns almost immediately but mostly\n\
         carries one rank's data; each step toward full waits longer and\n\
         includes more — pick the point your accuracy budget needs (§8)."
    );
}
