//! Direct use of the partial-collective API (no training): solo,
//! majority, and quorum-chain allreduce under an artificial straggler,
//! with per-round participation traces.
//!
//! ```sh
//! cargo run --release --example partial_allreduce
//! ```

use eager_sgd_repro::prelude::*;
use std::time::{Duration, Instant};

fn demo(policy: QuorumPolicy, name: &str) {
    const P: usize = 8;
    const ROUNDS: u64 = 6;

    println!("--- {name} ---");
    let results = World::launch(WorldConfig::instant(P), move |c| {
        let ctx = RankCtx::new(c);
        let mut ar =
            ctx.partial_allreduce(DType::F32, 1, ReduceOp::Sum, policy, PartialOpts::default());
        let mut lines = Vec::new();
        for round in 0..ROUNDS {
            ctx.host_barrier();
            // Rank 7 is chronically slow.
            if ctx.rank() == 7 {
                std::thread::sleep(Duration::from_millis(40));
            }
            let t0 = Instant::now();
            let out = ar.allreduce(&TypedBuf::from(vec![1.0f32]));
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            if ctx.rank() == 0 {
                lines.push(format!(
                    "  round {round}: sum of fresh+stale contributions = {:>4.1}, \
                     rank-0 latency {ms:>6.2} ms (result from round {})",
                    out.data.as_f32().unwrap()[0],
                    out.result_round,
                ));
            }
            ctx.barrier();
        }
        let traces = ar.traces();
        ctx.finalize();
        (lines, traces)
    });

    for line in &results[0].0 {
        println!("{line}");
    }
    // How often was the slow rank's own gradient fresh?
    let slow_fresh = results[7].1.iter().filter(|t| t.fresh).count();
    println!("  slow rank contributed fresh data in {slow_fresh}/{ROUNDS} rounds\n");
}

fn main() {
    println!(
        "partial allreduce across 8 ranks; every rank deposits 1.0 per round;\n\
         rank 7 sleeps 40 ms — watch who makes it into each round's sum:\n"
    );
    demo(QuorumPolicy::Solo, "solo (wait-free, quorum >= 1)");
    demo(
        QuorumPolicy::Majority,
        "majority (random initiator, E[active] = P/2)",
    );
    demo(
        QuorumPolicy::Chain(4),
        "chain-4 (all 4 random candidates must arrive, E[active] = 4P/5)",
    );
    demo(
        QuorumPolicy::Full,
        "full (synchronous endpoint of the spectrum)",
    );
    println!(
        "note: sums < 8 mean absent ranks contributed G_null; their deposits\n\
         ride into the next round as stale gradients (Fig. 7's protocol), so\n\
         across rounds nothing is lost."
    );
}
