//! Closed-loop adaptive quorum control, end to end: the same training job
//! run through two skew regimes, with the UCB controller re-selecting the
//! quorum policy every 8 rounds from rank-summed telemetry.
//!
//! Phase 1 is balanced (no injected delays): waiting for everyone is
//! cheap, so the controller should settle toward the synchronous end of
//! the spectrum (majority/chain/full). Phase 2 injects one heavy random
//! straggler per step (the Fig. 10 protocol): now waiting for the full
//! quorum costs the straggler's whole delay every round while skipping it
//! costs almost nothing, and the controller migrates toward the
//! asynchronous end (solo/first-of). Every decision is printed as the
//! JSON record the bench suite shares (`BENCH_*.json` format).
//!
//! ```sh
//! cargo run --release --example adaptive_training
//! ```

use eager_sgd_repro::prelude::*;
use std::sync::Arc;

const P: usize = 8;
const PERIOD: u64 = 8;

fn run_phase(name: &str, injector: Injector) {
    let task = Arc::new(HyperplaneTask::new(32, 1024, 0.05, 64, 7));
    let logs = World::launch(WorldConfig::instant(P).with_seed(11), move |c| {
        let ctx = RankCtx::new(c);
        let mut rng = TensorRng::new(5);
        let mut model = eager_sgd_repro::nn::zoo::hyperplane_mlp(32, &mut rng);
        let mut opt = Sgd::new(0.02);
        let wl = HyperplaneWorkload {
            task: Arc::clone(&task),
            local_batch: 16,
        };
        let mut cfg = TrainerConfig::new(SgdVariant::EagerMajority, 2, 40, 0.02);
        cfg.injector = injector.clone();
        cfg.time_scale = 0.1;
        cfg.base_compute_ms = 10.0;
        cfg.eval_every = 1000;
        cfg.tuner = Some(adaptive_setup(AdaptiveTunerCfg {
            period: PERIOD,
            kind: ControllerKind::Ucb { explore: 0.6 },
            ..AdaptiveTunerCfg::default()
        }));
        let log = run_rank(&ctx, &mut model, &mut opt, &wl, &cfg);
        ctx.finalize();
        log
    });

    let log = &logs[0];
    let steps: u64 = log.steps;
    let fresh: u64 = logs.iter().map(|l| l.fresh_rounds).sum();
    println!("\n=== {name} ===");
    println!(
        "  {} steps, {:.1} rounds/s, fresh fraction {:.2}",
        steps,
        steps as f64 / log.total_train_s.max(1e-9),
        fresh as f64 / (steps * P as u64) as f64,
    );
    for d in &log.decisions {
        println!(
            "  step {:>3}: -> {:<12} (reward {:>7.2}, fresh {:.2}, {:>6.1} rounds/s)",
            d.step,
            d.policy.to_string(),
            d.reward,
            d.fresh_fraction,
            d.rounds_per_s
        );
    }
    if let Some(last) = log.decisions.last() {
        println!(
            "  final policy: {} (as JSON: {})",
            last.policy,
            eager_sgd_repro::tune::to_json(last)
        );
    }
}

fn main() {
    println!(
        "adaptive quorum control on {P} ranks: UCB bandit over the solo–majority–full \
         spectrum, deciding every {PERIOD} rounds"
    );
    run_phase("phase 1: balanced (no injected skew)", Injector::None);
    run_phase(
        "phase 2: one random 160 ms straggler per step",
        Injector::RandomRanks {
            k: 1,
            amount_ms: 160.0,
            seed: 13,
        },
    );
    println!(
        "\nExpected drift: toward majority/chain/full when balanced (freshness is \
         free), toward solo/first-of under straggler skew (waiting dominates)."
    );
}
