//! Training under cloud performance variability (§2.3 / Fig. 11 scenario,
//! in miniature): a balanced classification workload where the *system*
//! injects right-skewed noise on random ranks each step. Eager-SGD with
//! solo allreduce rides through the noise.
//!
//! ```sh
//! cargo run --release --example cloud_training
//! ```

use eager_sgd_repro::prelude::*;
use std::sync::Arc;

fn train(variant: SgdVariant, task: Arc<GaussianMixtureTask>) -> (f64, f32) {
    const P: usize = 8;
    let logs = World::launch(WorldConfig::instant(P), move |c| {
        let ctx = RankCtx::new(c);
        let mut rng = TensorRng::new(2024);
        let mut model = dnn::zoo::resnet_proxy(64, 48, 4, 10, &mut rng);
        let mut opt = Sgd::new(0.08);
        let workload = ImageWorkload {
            task: Arc::clone(&task),
            local_batch: 32,
            train_eval_batches: 0,
        };
        let mut cfg = TrainerConfig::new(variant, 8, 15, 0.08);
        // Fig. 4's cloud-noise model, scaled down 10x.
        cfg.injector = Injector::cloud_default(7);
        cfg.time_scale = 0.1;
        cfg.base_compute_ms = 100.0;
        cfg.model_sync_every = Some(4);
        cfg.eval_every = 4;
        let log = run_rank(&ctx, &mut model, &mut opt, &workload, &cfg);
        ctx.finalize();
        log
    });
    let time = logs.iter().map(|l| l.total_train_s).sum::<f64>() / logs.len() as f64;
    let top1 = logs[0].final_test().map(|t| t.top1).unwrap_or(f32::NAN);
    (time, top1)
}

fn main() {
    println!(
        "balanced 10-class task on 8 'cloud' ranks; per-(rank, step) delays are\n\
         drawn from the Fig. 4 log-normal (mean ≈ 55 ms extra, tail past 1 s),\n\
         scaled 10x down:\n"
    );
    let task = Arc::new(GaussianMixtureTask::new(64, 10, 50_000, 0.9, 512, 11));

    let (t_sync, acc_sync) = train(SgdVariant::SynchDeep500, Arc::clone(&task));
    println!("synch-SGD (Deep500): {t_sync:.2} s, top-1 {acc_sync:.3}");
    let (t_eager, acc_eager) = train(SgdVariant::EagerSolo, Arc::clone(&task));
    println!("eager-SGD (solo)   : {t_eager:.2} s, top-1 {acc_eager:.3}");
    println!(
        "\nspeedup {:.2}x — synch-SGD pays the max of 8 noise draws every step,\n\
         eager-SGD pays only its own (Fig. 11's effect)",
        t_sync / t_eager
    );
}
